//! Ladder event queue: O(1)-amortized push/pop for the near horizon.
//!
//! The reference [`EventQueue`] pays `O(log n)` per operation on a
//! `BinaryHeap`, and at 256+-node sweeps the heap holds tens of
//! thousands of pending events — the hot loop spends its time sifting.
//! [`LadderQueue`] exploits the structure of simulator workloads: almost
//! every push lands just ahead of the current virtual time, and events
//! are popped in a narrow moving window.
//!
//! Three tiers:
//!
//! * **bottom** — the events of the currently active slice, sorted by
//!   `(time, seq)` (stored in descending order so `pop` is a `Vec::pop`
//!   from the tail). Pushes that land inside the active slice
//!   binary-insert here; because new events carry the largest sequence
//!   number, they slot in right next to the tail for same-instant
//!   bursts, so the common "wake myself at `now`" push is O(1).
//! * **rung** — [`NUM_BUCKETS`] unsorted buckets spanning the window
//!   `[win_lo, win_hi)`, each `bucket_w` ns wide. Near-future pushes
//!   append to a bucket in O(1). When the bottom drains, the next
//!   non-empty bucket is sorted once and *becomes* the bottom (a
//!   `mem::swap`, reusing both allocations).
//! * **top** — a `BinaryHeap` holding far-future events (`t >= win_hi`).
//!   When bottom and rung are both empty, the next [`SPAN_TARGET`]
//!   events (plus all ties with the last timestamp) are pulled out of
//!   the heap to build a fresh window.
//!
//! Determinism: every tier orders by the same `(time, seq)` key as the
//! reference queue, and the tier boundaries only ever separate events
//! whose keys already order them (an event in the rung at `t < win_hi`
//! precedes every heap event at `t >= win_hi`; ties at a saturated
//! `win_hi` are resolved by `seq`, and later pushes always have larger
//! `seq`). The differential suite in `tests/queue_diff.rs` checks
//! pop-for-pop equality against [`EventQueue`] on adversarial
//! workloads, and the full-app suite checks byte-identical `RunReport`s.

use crate::order::MinEntry;
use crate::queue::EventQueue;
use crate::time::VirtualTime;
use std::collections::BinaryHeap;

/// Number of rung buckets per window.
const NUM_BUCKETS: usize = 64;

/// Events pulled from the far-future heap per re-span.
const SPAN_TARGET: usize = 2048;

type Entry<E> = MinEntry<VirtualTime, E>;

/// Ceiling division without the `a + b - 1` overflow hazard.
fn div_ceil(a: u64, b: u64) -> u64 {
    a / b + u64::from(!a.is_multiple_of(b))
}

/// A deterministic ladder/calendar queue, pop-for-pop identical to
/// [`EventQueue`].
pub struct LadderQueue<E> {
    /// Active slice, sorted by `(time, seq)` descending; popped from
    /// the tail.
    bottom: Vec<Entry<E>>,
    /// Unsorted buckets covering `[win_lo, win_hi)`.
    buckets: Vec<Vec<Entry<E>>>,
    /// Total events currently in the rung buckets.
    rung_len: usize,
    /// Next bucket index to activate.
    cursor: usize,
    win_lo: u64,
    /// Exclusive upper bound of the rung window.
    win_hi: u64,
    bucket_w: u64,
    /// Exclusive bound of the bottom band: pushes below it must
    /// binary-insert into `bottom` to keep the pop order total.
    active_hi: u64,
    has_window: bool,
    /// Far-future events (`t >= win_hi`).
    top: BinaryHeap<Entry<E>>,
    /// Re-span scratch; kept to reuse its allocation.
    staging: Vec<Entry<E>>,
    next_seq: u64,
    len: usize,
    peak: usize,
}

impl<E> Default for LadderQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> LadderQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        LadderQueue {
            bottom: Vec::new(),
            buckets: (0..NUM_BUCKETS).map(|_| Vec::new()).collect(),
            rung_len: 0,
            cursor: 0,
            win_lo: 0,
            win_hi: 0,
            bucket_w: 1,
            active_hi: 0,
            has_window: false,
            top: BinaryHeap::new(),
            staging: Vec::new(),
            next_seq: 0,
            len: 0,
            peak: 0,
        }
    }

    /// Schedule `event` at `time`. Events pushed at equal times pop in
    /// push order.
    pub fn push(&mut self, time: VirtualTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        if self.len > self.peak {
            self.peak = self.len;
        }
        let t = time.as_ns();
        let e = MinEntry::new(time, seq, event);
        if self.has_window && t < self.active_hi {
            // The new entry has the largest seq, so within its time
            // class it pops last — in the descending bottom order it
            // goes before the suffix of equal-or-earlier times.
            let idx = self.bottom.partition_point(|x| x.key.as_ns() > t);
            self.bottom.insert(idx, e);
        } else if self.has_window && t < self.win_hi {
            let b = (((t - self.win_lo) / self.bucket_w) as usize).min(NUM_BUCKETS - 1);
            debug_assert!(b >= self.cursor.min(NUM_BUCKETS - 1));
            self.buckets[b].push(e);
            self.rung_len += 1;
        } else {
            self.top.push(e);
        }
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(VirtualTime, E)> {
        self.settle();
        let e = self.bottom.pop()?;
        self.len -= 1;
        Some((e.key, e.item))
    }

    /// Timestamp of the earliest event without removing it. Takes
    /// `&mut self` because it may promote events between tiers (the
    /// observable state is unchanged).
    pub fn peek_time(&mut self) -> Option<VirtualTime> {
        self.settle();
        self.bottom.last().map(|e| e.key)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of events ever scheduled.
    pub fn total_scheduled(&self) -> u64 {
        self.next_seq
    }

    /// Largest number of events ever pending at once.
    pub fn peak_len(&self) -> usize {
        self.peak
    }

    /// Drop all pending events; `total_scheduled` and `peak_len` keep
    /// counting across the clear, like the reference queue.
    pub fn clear(&mut self) {
        self.bottom.clear();
        for b in &mut self.buckets {
            b.clear();
        }
        self.rung_len = 0;
        self.cursor = 0;
        self.has_window = false;
        self.top.clear();
        self.staging.clear();
        self.len = 0;
    }

    /// Ensure the earliest pending event (if any) sits at the tail of
    /// `bottom`, activating buckets / re-spanning as needed.
    fn settle(&mut self) {
        while self.bottom.is_empty() {
            if self.rung_len > 0 {
                self.activate_next_bucket();
            } else if !self.top.is_empty() {
                self.respan();
            } else {
                return;
            }
        }
    }

    /// Sort the next non-empty bucket and make it the bottom slice.
    fn activate_next_bucket(&mut self) {
        debug_assert!(self.bottom.is_empty() && self.rung_len > 0);
        while self.buckets[self.cursor].is_empty() {
            self.cursor += 1;
        }
        let idx = self.cursor;
        self.cursor += 1;
        self.rung_len -= self.buckets[idx].len();
        // `bottom` is empty: the swap hands its spare capacity back to
        // the bucket for the next window — no allocation either way.
        std::mem::swap(&mut self.bottom, &mut self.buckets[idx]);
        // Descending (time, seq): seqs are unique, so unstable is fine.
        self.bottom
            .sort_unstable_by_key(|e| std::cmp::Reverse((e.key, e.seq)));
        // Saturating throughout: a window spanning nearly the full time
        // axis (e.g. a near-zero event plus a MAX sentinel) makes
        // `bucket_w` large enough that `cursor * bucket_w` alone can
        // exceed u64; the `min(win_hi)` clamp makes saturation exact.
        self.active_hi = self
            .win_lo
            .saturating_add((self.cursor as u64).saturating_mul(self.bucket_w))
            .min(self.win_hi);
    }

    /// Build a fresh window from the far-future heap.
    fn respan(&mut self) {
        debug_assert!(self.bottom.is_empty() && self.rung_len == 0);
        debug_assert!(self.staging.is_empty() && !self.top.is_empty());
        while self.staging.len() < SPAN_TARGET {
            match self.top.pop() {
                Some(e) => self.staging.push(e),
                None => break,
            }
        }
        // Keep whole time classes together: pull every remaining tie
        // with the last timestamp so the window boundary never splits
        // equal times (heap pops ties in seq order).
        let last = self.staging.last().expect("respan pulled events").key;
        while self.top.peek().is_some_and(|e| e.key == last) {
            let e = self.top.pop().expect("peeked entry");
            self.staging.push(e);
        }
        let lo = self
            .staging
            .first()
            .expect("respan pulled events")
            .key
            .as_ns();
        self.win_lo = lo;
        self.win_hi = last.as_ns().saturating_add(1);
        let span = (self.win_hi - lo).max(1);
        self.bucket_w = div_ceil(span, NUM_BUCKETS as u64).max(1);
        self.cursor = 0;
        self.active_hi = self.win_lo;
        self.has_window = true;
        for e in self.staging.drain(..) {
            let b = (((e.key.as_ns() - lo) / self.bucket_w) as usize).min(NUM_BUCKETS - 1);
            self.buckets[b].push(e);
            self.rung_len += 1;
        }
    }
}

/// Which event-queue implementation a simulation runs on.
///
/// `Heap` is the property-tested reference; `Ladder` is the fast path,
/// proven pop-for-pop identical by the differential suite. The knob
/// exists so the reference stays exercised and any future queue bug
/// bisects in one config flip.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum QueueKind {
    /// Reference `BinaryHeap` queue ([`EventQueue`]).
    Heap,
    /// Ladder queue ([`LadderQueue`]), the default.
    #[default]
    Ladder,
}

/// An event queue of either kind behind one static dispatch point.
pub enum SimQueue<E> {
    /// The reference heap queue.
    Heap(EventQueue<E>),
    /// The ladder queue.
    Ladder(LadderQueue<E>),
}

impl<E> SimQueue<E> {
    /// An empty queue of the requested kind.
    pub fn new(kind: QueueKind) -> Self {
        match kind {
            QueueKind::Heap => SimQueue::Heap(EventQueue::new()),
            QueueKind::Ladder => SimQueue::Ladder(LadderQueue::new()),
        }
    }

    /// Which implementation this queue runs on.
    pub fn kind(&self) -> QueueKind {
        match self {
            SimQueue::Heap(_) => QueueKind::Heap,
            SimQueue::Ladder(_) => QueueKind::Ladder,
        }
    }

    /// Schedule `event` at `time`.
    pub fn push(&mut self, time: VirtualTime, event: E) {
        match self {
            SimQueue::Heap(q) => q.push(time, event),
            SimQueue::Ladder(q) => q.push(time, event),
        }
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(VirtualTime, E)> {
        match self {
            SimQueue::Heap(q) => q.pop(),
            SimQueue::Ladder(q) => q.pop(),
        }
    }

    /// Timestamp of the earliest event without removing it.
    pub fn peek_time(&mut self) -> Option<VirtualTime> {
        match self {
            SimQueue::Heap(q) => q.peek_time(),
            SimQueue::Ladder(q) => q.peek_time(),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match self {
            SimQueue::Heap(q) => q.len(),
            SimQueue::Ladder(q) => q.len(),
        }
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        match self {
            SimQueue::Heap(q) => q.is_empty(),
            SimQueue::Ladder(q) => q.is_empty(),
        }
    }

    /// Total number of events ever scheduled.
    pub fn total_scheduled(&self) -> u64 {
        match self {
            SimQueue::Heap(q) => q.total_scheduled(),
            SimQueue::Ladder(q) => q.total_scheduled(),
        }
    }

    /// Largest number of events ever pending at once.
    pub fn peak_len(&self) -> usize {
        match self {
            SimQueue::Heap(q) => q.peak_len(),
            SimQueue::Ladder(q) => q.peak_len(),
        }
    }

    /// Drop all pending events.
    pub fn clear(&mut self) {
        match self {
            SimQueue::Heap(q) => q.clear(),
            SimQueue::Ladder(q) => q.clear(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::VirtualDuration;

    fn t(us: u64) -> VirtualTime {
        VirtualTime::ZERO + VirtualDuration::from_us(us)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = LadderQueue::new();
        q.push(t(30), "c");
        q.push(t(10), "a");
        q.push(t(20), "b");
        assert_eq!(q.pop(), Some((t(10), "a")));
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert_eq!(q.pop(), Some((t(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = LadderQueue::new();
        for i in 0..100 {
            q.push(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = LadderQueue::new();
        q.push(t(10), 1);
        q.push(t(5), 0);
        assert_eq!(q.pop(), Some((t(5), 0)));
        q.push(t(7), 2);
        assert_eq!(q.pop(), Some((t(7), 2)));
        assert_eq!(q.pop(), Some((t(10), 1)));
    }

    #[test]
    fn past_time_push_pops_first() {
        let mut q = LadderQueue::new();
        for i in 0..10 {
            q.push(t(100 + i), i);
        }
        assert_eq!(q.pop(), Some((t(100), 0)));
        // A push earlier than everything already windowed.
        q.push(t(1), 99);
        assert_eq!(q.pop(), Some((t(1), 99)));
        assert_eq!(q.pop(), Some((t(101), 1)));
    }

    #[test]
    fn same_instant_burst_into_active_slice() {
        let mut q = LadderQueue::new();
        q.push(t(10), 0);
        q.push(t(20), 1);
        assert_eq!(q.pop(), Some((t(10), 0)));
        // Burst at the already-activated instant 10.
        for i in 2..20 {
            q.push(t(10), i);
        }
        for i in 2..20 {
            assert_eq!(q.pop(), Some((t(10), i)));
        }
        assert_eq!(q.pop(), Some((t(20), 1)));
    }

    #[test]
    fn survives_many_respans() {
        // More events than one SPAN_TARGET window, spread widely so
        // multiple re-spans and bucket activations happen.
        let mut q = LadderQueue::new();
        let n = 3 * SPAN_TARGET as u64;
        for i in 0..n {
            // Deterministic shuffle of the time axis.
            let time = (i * 2_654_435_761) % 100_000;
            q.push(t(time), i);
        }
        let mut prev = (VirtualTime::ZERO, 0u64);
        let mut popped = 0;
        while let Some((time, _)) = q.pop() {
            assert!(time >= prev.0);
            prev = (time, prev.1);
            popped += 1;
        }
        assert_eq!(popped, n);
    }

    #[test]
    fn max_time_sentinel_orders_after_everything() {
        let mut q = LadderQueue::new();
        q.push(VirtualTime::MAX, "idle-forever");
        q.push(t(1), "real");
        assert_eq!(q.pop(), Some((t(1), "real")));
        // A second MAX push while the first is windowed: seq order.
        q.push(VirtualTime::MAX, "idle-later");
        assert_eq!(q.pop(), Some((VirtualTime::MAX, "idle-forever")));
        assert_eq!(q.pop(), Some((VirtualTime::MAX, "idle-later")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn full_axis_respan_window_does_not_overflow() {
        // Regression: t=0 and a MAX sentinel in the same re-span make
        // the window span the whole time axis (bucket_w = 2^58), and
        // activating the last bucket used to compute
        // `64 * bucket_w = 2^64`, overflowing u64 (debug panic,
        // release wrap corrupting `active_hi`).
        let mut q = LadderQueue::new();
        q.push(VirtualTime::ZERO, "now");
        q.push(VirtualTime::MAX, "idle-forever");
        assert_eq!(q.pop(), Some((VirtualTime::ZERO, "now")));
        // In-window push after the overflow-prone bucket activation
        // must still order correctly.
        q.push(t(5), "late");
        assert_eq!(q.pop(), Some((t(5), "late")));
        assert_eq!(q.pop(), Some((VirtualTime::MAX, "idle-forever")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn peek_len_clear_and_counters() {
        let mut q = LadderQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(t(9), ());
        q.push(t(3), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(t(3)));
        assert_eq!(q.total_scheduled(), 2);
        assert_eq!(q.peak_len(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.total_scheduled(), 2);
        assert_eq!(q.peak_len(), 2);
        // Still usable after clear.
        q.push(t(1), ());
        assert_eq!(q.pop(), Some((t(1), ())));
    }

    #[test]
    fn simqueue_dispatches_both_kinds() {
        for kind in [QueueKind::Heap, QueueKind::Ladder] {
            let mut q = SimQueue::new(kind);
            assert_eq!(q.kind(), kind);
            q.push(t(2), "b");
            q.push(t(1), "a");
            assert_eq!(q.peek_time(), Some(t(1)));
            assert_eq!(q.len(), 2);
            assert_eq!(q.peak_len(), 2);
            assert_eq!(q.pop(), Some((t(1), "a")));
            assert_eq!(q.pop(), Some((t(2), "b")));
            assert!(q.is_empty());
            assert_eq!(q.total_scheduled(), 2);
        }
    }

    #[test]
    fn default_kind_is_ladder() {
        assert_eq!(QueueKind::default(), QueueKind::Ladder);
    }
}
