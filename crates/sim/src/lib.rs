//! Deterministic discrete-event simulation core for the EARTH-MANNA
//! reproduction suite.
//!
//! Everything the runtime and machine model measure is expressed in
//! *virtual time*: the simulated nanoseconds elapsed on the modeled 1997
//! MANNA hardware, not host wall-clock time. This crate provides the three
//! deterministic building blocks the rest of the workspace is built on:
//!
//! * [`VirtualTime`] / [`VirtualDuration`] — a nanosecond-resolution clock
//!   with saturating/checked arithmetic and human-readable formatting;
//! * [`EventQueue`] — a priority queue of timestamped events with a total,
//!   reproducible ordering (ties broken by insertion sequence number), plus
//!   [`LadderQueue`], a pop-for-pop identical ladder queue with O(1)
//!   near-horizon push/pop, selected per simulation via [`QueueKind`];
//! * [`Rng`] — a small, self-contained xoshiro256** PRNG seeded via
//!   SplitMix64, so simulations are bit-identical for a given seed
//!   regardless of dependency versions or platform.
//!
//! [`stats`] adds the summary helpers (mean / min / max / stddev, speedup
//! series) used by the benchmark harness to reproduce the paper's figures.

pub mod ladder;
pub mod order;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;

pub use ladder::{LadderQueue, QueueKind, SimQueue};
pub use order::MinEntry;
pub use queue::EventQueue;
pub use rng::{bounded_pareto, stream_word, unit_f64, word_bounded, Rng};
pub use stats::{nearest_rank, Breakdown, Summary};
pub use time::{VirtualDuration, VirtualTime};
