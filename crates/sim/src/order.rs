//! Shared min-first ordering wrapper for `std::collections::BinaryHeap`.
//!
//! Several places in the workspace want a *min*-heap with deterministic
//! tie-breaking out of the standard library's *max*-heap: the event
//! queues in this crate order by `(VirtualTime, seq)`, the Buchberger
//! driver in `earth-algebra` orders critical pairs by `(degree, lcm)`,
//! and the distributed Gröbner app keeps a per-node copy of the same
//! order. Each used to hand-roll the reversed `Ord` boilerplate;
//! [`MinEntry`] is the one shared inversion.
//!
//! Ordering is by `(key, seq)` — smallest key first, smallest sequence
//! number among equal keys — and deliberately ignores `item`, so the
//! payload type needs no `Ord` (or even `Eq`) implementation.

use std::cmp::Ordering;

/// A `(key, seq, item)` triple whose `Ord` is reversed so that a
/// `BinaryHeap<MinEntry<K, T>>` pops the smallest `(key, seq)` first.
///
/// `seq` is a caller-assigned monotone counter that makes the order
/// total and reproducible: equal keys pop in insertion order.
#[derive(Clone, Copy, Debug)]
pub struct MinEntry<K, T> {
    /// Primary sort key (popped smallest-first).
    pub key: K,
    /// Insertion sequence number; breaks ties among equal keys.
    pub seq: u64,
    /// Carried payload; ignored by the ordering.
    pub item: T,
}

impl<K, T> MinEntry<K, T> {
    /// Wrap a payload with its sort key and tie-breaking sequence.
    pub fn new(key: K, seq: u64, item: T) -> Self {
        MinEntry { key, seq, item }
    }
}

impl<K: Ord, T> PartialEq for MinEntry<K, T> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.seq == other.seq
    }
}

impl<K: Ord, T> Eq for MinEntry<K, T> {}

impl<K: Ord, T> PartialOrd for MinEntry<K, T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<K: Ord, T> Ord for MinEntry<K, T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the smallest first.
        other
            .key
            .cmp(&self.key)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    #[test]
    fn heap_pops_smallest_key_first() {
        let mut h = BinaryHeap::new();
        h.push(MinEntry::new(30u64, 0, "c"));
        h.push(MinEntry::new(10u64, 1, "a"));
        h.push(MinEntry::new(20u64, 2, "b"));
        assert_eq!(h.pop().map(|e| e.item), Some("a"));
        assert_eq!(h.pop().map(|e| e.item), Some("b"));
        assert_eq!(h.pop().map(|e| e.item), Some("c"));
    }

    #[test]
    fn equal_keys_pop_in_seq_order() {
        let mut h = BinaryHeap::new();
        for seq in 0..50u64 {
            h.push(MinEntry::new((7u64, 7u64), seq, seq));
        }
        for seq in 0..50u64 {
            assert_eq!(h.pop().map(|e| e.item), Some(seq));
        }
    }

    #[test]
    fn ordering_ignores_item() {
        // The item type implements neither Ord nor Eq.
        struct Opaque;
        let a = MinEntry::new(1u64, 0, Opaque);
        let b = MinEntry::new(2u64, 1, Opaque);
        assert!(a > b, "smaller key must rank higher in the max-heap");
    }
}
