//! Summary statistics for experiment series.
//!
//! The paper reports each Gröbner data point as the mean / minimum /
//! maximum speedup over 20 seeded runs (Figs. 4b and 5); these helpers
//! compute exactly those summaries plus the sample standard deviation used
//! in EXPERIMENTS.md.

use std::fmt;
use std::fmt::Write as _;

/// Mean / min / max / stddev of a sample of `f64` observations.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Sample standard deviation (n-1 denominator; 0 for n < 2).
    pub stddev: f64,
}

impl Summary {
    /// Summarize a non-empty sample. Panics on an empty slice.
    pub fn of(samples: &[f64]) -> Summary {
        assert!(!samples.is_empty(), "Summary::of on empty sample");
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &x in samples {
            min = min.min(x);
            max = max.max(x);
        }
        let stddev = if n >= 2 {
            let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
            var.sqrt()
        } else {
            0.0
        };
        Summary {
            n,
            mean,
            min,
            max,
            stddev,
        }
    }

    /// max/min ratio — the paper's "vary by a factor of up to 7" metric.
    pub fn spread_factor(&self) -> f64 {
        if self.min > 0.0 {
            self.max / self.min
        } else {
            f64::INFINITY
        }
    }
}

/// Nearest-rank percentile of an **ascending-sorted** sample: the smallest
/// observation such that at least `p·n` observations are ≤ it. This is the
/// single percentile definition shared by the testkit bench `Stats`
/// (p50/p95/p99 of wall times) and the traffic plane's sojourn-time
/// summaries, so the two never disagree on what "p99" means. Panics on an
/// empty sample; `p` is clamped to `[0, 1]`.
pub fn nearest_rank(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "nearest_rank on empty sample");
    let n = sorted.len();
    let p = p.clamp(0.0, 1.0);
    let idx = ((p * n as f64).ceil() as usize).max(1) - 1;
    sorted[idx.min(n - 1)]
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mean {:.2} (min {:.2}, max {:.2}, sd {:.2}, n={})",
            self.mean, self.min, self.max, self.stddev, self.n
        )
    }
}

/// Speedup of a baseline against a set of trials: `base / trial` for each
/// trial, summarized. This is how every figure in the paper is computed:
/// sequential virtual runtime over parallel virtual runtime.
pub fn speedup_summary(sequential_ns: u64, parallel_ns: &[u64]) -> Summary {
    let series: Vec<f64> = parallel_ns
        .iter()
        .map(|&p| sequential_ns as f64 / p as f64)
        .collect();
    Summary::of(&series)
}

/// A labelled cost breakdown: `(label, amount)` rows that are rendered
/// with their share of the total — the "where did the microseconds go"
/// presentation of Table 1 and the earth-profile overhead tables.
#[derive(Clone, Debug, Default)]
pub struct Breakdown {
    rows: Vec<(String, f64)>,
}

impl Breakdown {
    /// Append one component.
    pub fn push(&mut self, label: &str, amount: f64) {
        self.rows.push((label.to_string(), amount));
    }

    /// Sum of all components.
    pub fn total(&self) -> f64 {
        self.rows.iter().map(|(_, a)| a).sum()
    }

    /// Render as aligned `label  amount  share%` lines with `unit`
    /// appended to each amount.
    pub fn render(&self, unit: &str) -> String {
        let total = self.total();
        let mut out = String::new();
        for (label, amount) in &self.rows {
            let share = if total > 0.0 {
                amount / total * 100.0
            } else {
                0.0
            };
            let _ = writeln!(out, "  {label:<18} {amount:>14.3} {unit:<3} {share:>5.1}%");
        }
        let _ = writeln!(out, "  {:<18} {total:>14.3} {unit:<3} 100.0%", "total");
        out
    }
}

/// Render a fixed-width table row of `(label, cells)` for the repro
/// harness's text output.
pub fn table_row(label: &str, cells: &[String], width: usize) -> String {
    let mut row = format!("{label:<18}");
    for c in cells {
        row.push_str(&format!("{c:>width$}"));
    }
    row
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        // sample sd of 1..4 = sqrt(5/3)
        assert!((s.stddev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!((s.spread_factor() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn single_sample() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.min, 7.0);
        assert_eq!(s.max, 7.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        let _ = Summary::of(&[]);
    }

    #[test]
    fn speedups() {
        let s = speedup_summary(1000, &[500, 250, 1000]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.mean - (2.0 + 4.0 + 1.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn nearest_rank_basics() {
        let s: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(nearest_rank(&s, 0.50), 50.0);
        assert_eq!(nearest_rank(&s, 0.95), 95.0);
        assert_eq!(nearest_rank(&s, 0.99), 99.0);
        assert_eq!(nearest_rank(&s, 0.0), 1.0);
        assert_eq!(nearest_rank(&s, 1.0), 100.0);
    }

    #[test]
    fn nearest_rank_single_sample_is_that_sample() {
        for p in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(nearest_rank(&[7.5], p), 7.5);
        }
    }

    #[test]
    fn nearest_rank_all_equal_samples_collapse_to_that_value() {
        let s = [3.25; 17];
        for p in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(nearest_rank(&s, p), 3.25);
        }
    }

    #[test]
    fn nearest_rank_clamps_p() {
        assert_eq!(nearest_rank(&[1.0, 2.0], -3.0), 1.0);
        assert_eq!(nearest_rank(&[1.0, 2.0], 42.0), 2.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn nearest_rank_empty_panics() {
        let _ = nearest_rank(&[], 0.5);
    }

    #[test]
    fn row_formatting() {
        let r = table_row("lazard", &["1.00".into(), "1.98".into()], 8);
        assert!(r.starts_with("lazard"));
        assert!(r.ends_with("    1.98"));
    }

    #[test]
    fn breakdown_shares_sum_to_hundred() {
        let mut b = Breakdown::default();
        b.push("poll", 25.0);
        b.push("thread", 75.0);
        assert_eq!(b.total(), 100.0);
        let r = b.render("us");
        assert!(r.contains("25.0%"), "{r}");
        assert!(r.contains("75.0%"), "{r}");
        assert!(r.contains("total"), "{r}");
    }

    #[test]
    fn empty_breakdown_renders_without_dividing_by_zero() {
        let b = Breakdown::default();
        let r = b.render("us");
        assert!(r.contains("total"));
        assert!(!r.contains("NaN"));
    }

    #[test]
    fn display_is_compact() {
        let s = Summary::of(&[2.0, 2.0]);
        assert_eq!(
            s.to_string(),
            "mean 2.00 (min 2.00, max 2.00, sd 0.00, n=2)"
        );
    }
}
