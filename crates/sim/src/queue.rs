//! Timestamped event queue with a total, reproducible order.
//!
//! `BinaryHeap` alone is not enough for a deterministic simulator: two
//! events at the same virtual instant would pop in an unspecified order.
//! Every pushed event therefore carries a monotonically increasing sequence
//! number, and the queue orders by `(time, seq)` — earliest time first,
//! insertion order among ties. This makes whole-simulation traces a pure
//! function of (program, seed).
//!
//! This is the *reference* queue: the property-tested baseline that the
//! ladder queue in [`crate::ladder`] is differentially checked against.

use crate::order::MinEntry;
use crate::time::VirtualTime;
use std::collections::BinaryHeap;

/// A deterministic priority queue of `(VirtualTime, E)` pairs.
pub struct EventQueue<E> {
    heap: BinaryHeap<MinEntry<VirtualTime, E>>,
    next_seq: u64,
    peak: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            peak: 0,
        }
    }

    /// Schedule `event` at `time`. Events pushed at equal times pop in
    /// push order.
    pub fn push(&mut self, time: VirtualTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(MinEntry::new(time, seq, event));
        if self.heap.len() > self.peak {
            self.peak = self.heap.len();
        }
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(VirtualTime, E)> {
        self.heap.pop().map(|e| (e.key, e.item))
    }

    /// Timestamp of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<VirtualTime> {
        self.heap.peek().map(|e| e.key)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (a cheap activity metric).
    pub fn total_scheduled(&self) -> u64 {
        self.next_seq
    }

    /// Largest number of events ever pending at once.
    pub fn peak_len(&self) -> usize {
        self.peak
    }

    /// Drop all pending events (used to cut a simulation short once its
    /// result is known, e.g. after global termination is detected).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::VirtualDuration;

    fn t(us: u64) -> VirtualTime {
        VirtualTime::ZERO + VirtualDuration::from_us(us)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), "c");
        q.push(t(10), "a");
        q.push(t(20), "b");
        assert_eq!(q.pop(), Some((t(10), "a")));
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert_eq!(q.pop(), Some((t(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(t(10), 1);
        q.push(t(5), 0);
        assert_eq!(q.pop(), Some((t(5), 0)));
        q.push(t(7), 2);
        assert_eq!(q.pop(), Some((t(7), 2)));
        assert_eq!(q.pop(), Some((t(10), 1)));
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(t(9), ());
        q.push(t(3), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(t(3)));
        assert_eq!(q.total_scheduled(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.total_scheduled(), 2);
    }

    #[test]
    fn peak_len_tracks_high_water_mark() {
        let mut q = EventQueue::new();
        assert_eq!(q.peak_len(), 0);
        q.push(t(1), 0);
        q.push(t(2), 1);
        q.push(t(3), 2);
        assert_eq!(q.peak_len(), 3);
        q.pop();
        q.pop();
        q.push(t(4), 3);
        // Depth never exceeded 3 again.
        assert_eq!(q.peak_len(), 3);
        q.clear();
        assert_eq!(q.peak_len(), 3, "peak survives clear()");
    }
}
