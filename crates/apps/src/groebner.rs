//! The Gröbner Basis application (§3.2) on EARTH.
//!
//! Structure, following Figure 3 of the paper:
//!
//! * **Distributed pairs queues** — every worker node keeps its own
//!   priority queue of critical pairs ("ordered by priority of
//!   goodness"); priorities are only maintained locally. Idle workers
//!   obtain pairs through a receiver-initiated ring protocol.
//! * **Replicated solution set** — the basis is read-cached on every
//!   node; maintenance (id assignment, the lock) is centralized on node
//!   0. New polynomials are broadcast to all nodes as compact vectors.
//! * **The lock** — a worker whose reduction survives must acquire the
//!   central lock, *re-check reducibility* against any polynomials that
//!   arrived in the meantime, and only then insert. While the lock
//!   request is in flight the worker keeps reducing further pairs — the
//!   algorithmic-level latency hiding the paper highlights.
//! * **Termination detection** — the last node is reserved for it ("one
//!   node is reserved for detecting termination"): workers report
//!   created/consumed pair counters on every park/unpark; when all are
//!   parked with balanced counters the detector runs two confirmation
//!   probe rounds (counters make in-flight work visible: any pair or
//!   pending insert is created-but-not-consumed) and then broadcasts
//!   stop.
//!
//! The computation is the real GF(32003) arithmetic of `earth-algebra`;
//! the resulting basis is verified to be a Gröbner basis whose reduced
//! form equals the sequential one.

use earth_algebra::buchberger::{pair_key, select_new_pairs, SelectionStrategy};
use earth_algebra::cost::{insert_cost, work_cost};
use earth_algebra::monomial::Monomial;
use earth_algebra::poly::{Poly, Ring};
use earth_algebra::spoly::{normal_form, s_polynomial, Work};
use earth_algebra::wire;
use earth_machine::{MachineConfig, NodeId, QueueKind};
use earth_rt::{ArgsWriter, Ctx, FuncId, Runtime, SlotId, SlotRef, ThreadId, ThreadedFn};
use earth_sim::{MinEntry, Rng, VirtualDuration, VirtualTime};
use std::collections::{BinaryHeap, VecDeque};

// ---------------------------------------------------------------------------
// Local pair queue

/// A worker's local critical pair: strategy key, tiebreak sequence, and
/// the `(i, j)` basis indices as the carried item. `MinEntry` inverts the
/// ordering so `BinaryHeap` pops the *smallest* key first.
type LocalPair = MinEntry<(u64, u64), (u32, u32)>;

// ---------------------------------------------------------------------------
// Node state

struct ManagerState {
    lock_held_by: Option<u16>,
    lock_queue: VecDeque<u16>,
    basis_count: u32,
}

struct GrobNode {
    ring: Ring,
    strategy: SelectionStrategy,
    /// Read cache of the solution set, indexed by global polynomial id.
    cache: Vec<Option<Poly>>,
    leads: Vec<Option<Monomial>>,
    sugars: Vec<Option<u64>>,
    /// Number of leading cache entries present (ids 0..contiguous).
    contiguous: u32,
    queue: BinaryHeap<LocalPair>,
    /// Pairs referencing ids not yet cached.
    deferred: Vec<(u32, u32)>,
    pending_inserts: VecDeque<Poly>,
    lock_requested: bool,
    lock_granted: Option<u32>,
    awaiting_own_insert: bool,
    created: u64,
    consumed: u64,
    parked: bool,
    worker_slot: Option<SlotRef>,
    stop: bool,
    starving: VecDeque<u16>,
    requested_work: bool,
    pair_seq: u64,
    /// Work accounting for reporting.
    reductions: u64,
    zero_reductions: u64,
    parked_at: Option<VirtualTime>,
    park_total: VirtualDuration,
    parks: u64,
    /// Manager role (node 0 only).
    mgr: Option<ManagerState>,
    /// Detector role (last node only): per-worker (parked, created,
    /// consumed), probe state.
    det: Option<DetectorState>,
    /// Function ids of the protocol handlers (filled at setup).
    fns: ProtoFns,
    workers: u16,
    detector: Option<NodeId>,
    /// Central solution-set status word (on node 0), polled before every
    /// reduction ("obtaining status information about the solution set").
    status_addr: earth_rt::GlobalAddr,
    /// Scratch for the split-phase status load.
    status_scratch: u32,
    /// The pair whose reduction awaits the status reply.
    current_pair: Option<LocalPair>,
}

struct DetectorState {
    parked: Vec<bool>,
    created: Vec<u64>,
    consumed: Vec<u64>,
    round: u32,
    acks: usize,
    round_ok: bool,
    lock_free: bool,
    last_vector: Option<(Vec<u64>, Vec<u64>)>,
    confirmations: u32,
    done: bool,
}

#[derive(Clone, Copy, Default)]
struct ProtoFns {
    add_poly: u32,
    lock_grant: u32,
    pair_request: u32,
    pair_grant: u32,
    probe: u32,
    probe_ack: u32,
    stop: u32,
    status: u32,
    lock_req: u32,
    unlock: u32,
    add_poly_req: u32,
}

impl GrobNode {
    fn cache_insert(&mut self, id: u32, poly: Poly) {
        let idx = id as usize;
        if self.cache.len() <= idx {
            self.cache.resize_with(idx + 1, || None);
            self.leads.resize_with(idx + 1, || None);
            self.sugars.resize_with(idx + 1, || None);
        }
        self.leads[idx] = Some(poly.lead().m);
        self.sugars[idx] = Some(poly.degree() as u64);
        self.cache[idx] = Some(poly);
        while (self.contiguous as usize) < self.cache.len()
            && self.cache[self.contiguous as usize].is_some()
        {
            self.contiguous += 1;
        }
    }

    /// Queue a pair, deferring it if either poly is not yet cached.
    fn push_pair(&mut self, i: u32, j: u32) {
        let (Some(li), Some(lj)) = (
            self.leads.get(i as usize).cloned().flatten(),
            self.leads.get(j as usize).cloned().flatten(),
        ) else {
            self.deferred.push((i, j));
            return;
        };
        let lcm = li.lcm(&lj);
        let sugar = self.sugars[i as usize]
            .unwrap()
            .max(self.sugars[j as usize].unwrap())
            .max(lcm.degree() as u64);
        self.pair_seq += 1;
        let key = pair_key(self.strategy, &lcm, sugar, self.pair_seq);
        self.queue.push(LocalPair::new(key, self.pair_seq, (i, j)));
    }

    /// Re-examine deferred pairs after a cache update.
    fn retry_deferred(&mut self) {
        let pending = std::mem::take(&mut self.deferred);
        for (i, j) in pending {
            self.push_pair(i, j);
        }
    }

    /// The contiguous known prefix of the basis, for reductions.
    fn known_basis(&self) -> Vec<Poly> {
        self.cache[..self.contiguous as usize]
            .iter()
            .map(|p| p.clone().expect("contiguous prefix"))
            .collect()
    }
}

/// Wake the worker frame on this node if it is parked.
fn wake_worker(ctx: &mut Ctx<'_>) {
    let now = ctx.now();
    let slot = {
        let st = ctx.user_mut::<GrobNode>();
        if st.parked {
            st.parked = false;
            if let Some(t) = st.parked_at.take() {
                st.park_total += now.saturating_since(t);
            }
            st.worker_slot
        } else {
            None
        }
    };
    if let Some(slot) = slot {
        ctx.sync(slot);
    }
}

/// Send a status update to the detector (no-op without one).
fn send_status(ctx: &mut Ctx<'_>, fns: ProtoFns) {
    let st: &GrobNode = ctx.user();
    let Some(det) = st.detector else { return };
    let mut a = ArgsWriter::new();
    a.u16(ctx.node().0)
        .u8(st.parked as u8)
        .u64(st.created)
        .u64(st.consumed);
    ctx.invoke(det, FuncId(fns.status), a.finish());
}

// ---------------------------------------------------------------------------
// The worker frame

const SLOT_WAKE: SlotId = SlotId(0);
const SLOT_STATUS: SlotId = SlotId(1);
const T_LOOP: ThreadId = ThreadId(1);
const T_REDUCE: ThreadId = ThreadId(2);

struct Worker;

impl ThreadedFn for Worker {
    fn run(&mut self, ctx: &mut Ctx<'_>, tid: ThreadId) {
        match tid {
            ThreadId(0) => {
                let slot = ctx.slot_ref(SLOT_WAKE);
                {
                    let st = ctx.user_mut::<GrobNode>();
                    st.worker_slot = Some(slot);
                    st.status_scratch = 0;
                }
                let scratch = ctx.alloc(8).offset;
                ctx.user_mut::<GrobNode>().status_scratch = scratch;
                ctx.spawn(T_LOOP);
            }
            T_LOOP => self.step(ctx),
            T_REDUCE => {
                // Status word arrived; run the reduction we held back.
                let fns = ctx.user::<GrobNode>().fns;
                let pair = ctx
                    .user_mut::<GrobNode>()
                    .current_pair
                    .take()
                    .expect("pair awaiting status");
                self.process_pair(ctx, fns, pair);
                ctx.spawn(T_LOOP);
            }
            other => unreachable!("worker has no thread {other:?}"),
        }
    }
}

impl Worker {
    fn step(&mut self, ctx: &mut Ctx<'_>) {
        let fns = ctx.user::<GrobNode>().fns;
        if ctx.user::<GrobNode>().stop {
            ctx.end();
            return;
        }

        // 1. Complete a pending insert if the lock is ours and the cache
        //    has caught up with the basis count we were granted against.
        let insert_ready = {
            let st: &GrobNode = ctx.user();
            matches!(st.lock_granted, Some(nb) if st.contiguous >= nb)
        };
        if insert_ready {
            self.complete_insert(ctx, fns);
            ctx.spawn(T_LOOP);
            return;
        }

        // 2. Reduce the best local pair — unless too many speculative
        //    results already await insertion (deep speculation against a
        //    stale basis mostly produces work that collapses later).
        // Speculation throttle: with more than this many unresolved
        // speculative results, stop starting new reductions (deep
        // speculation against a stale basis mostly produces work that
        // collapses later). Empirically 1 maximizes speedup on the
        // Table 2 inputs; override with GB_THROTTLE for ablations.
        let throttle_limit: usize = std::env::var("GB_THROTTLE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1);
        let throttle = ctx.user::<GrobNode>().pending_inserts.len() >= throttle_limit;
        let pair = if throttle {
            None
        } else {
            ctx.user_mut::<GrobNode>().queue.pop()
        };
        if let Some(pair) = pair {
            // Split-phase load of the central solution-set status word;
            // the reduction runs when it arrives (the per-step
            // "individual synchronizing data load" of the paper).
            let (addr, scratch) = {
                let st = ctx.user_mut::<GrobNode>();
                st.current_pair = Some(pair);
                (st.status_addr, st.status_scratch)
            };
            ctx.init_sync(SLOT_STATUS, 1, 0, T_REDUCE);
            ctx.get_sync(addr, scratch, 4, SLOT_STATUS);
            return;
        }

        // 3. Nothing local: ask the ring for work, then park.
        let (should_request, next) = {
            let st: &GrobNode = ctx.user();
            let me = ctx.node().0;
            let should = !throttle
                && !st.requested_work
                && st.workers > 1
                && !st.stop
                && st.queue.is_empty();
            (should, NodeId((me + 1) % st.workers))
        };
        if should_request {
            ctx.user_mut::<GrobNode>().requested_work = true;
            let mut a = ArgsWriter::new();
            a.u16(ctx.node().0).u16(0);
            ctx.invoke(next, FuncId(fns.pair_request), a.finish());
        }
        // Park (single-worker runs self-terminate instead).
        let self_done = {
            let st: &GrobNode = ctx.user();
            st.detector.is_none()
                && st.pending_inserts.is_empty()
                && !st.lock_requested
                && st.created == st.consumed
        };
        if self_done {
            ctx.mark("groebner-done");
            ctx.end();
            return;
        }
        ctx.init_sync(SLOT_WAKE, 1, 0, T_LOOP);
        let now = ctx.now();
        {
            let st = ctx.user_mut::<GrobNode>();
            st.parked = true;
            st.parks += 1;
            st.parked_at = Some(now);
        }
        send_status(ctx, fns);
    }

    /// S-polynomial + normal form for one pair.
    fn process_pair(&mut self, ctx: &mut Ctx<'_>, fns: ProtoFns, pair: LocalPair) {
        let (nf, w) = {
            let st: &GrobNode = ctx.user();
            let basis = st.known_basis();
            let (pi, pj) = pair.item;
            let f = st.cache[pi as usize].as_ref().expect("cached");
            let g = st.cache[pj as usize].as_ref().expect("cached");
            let mut w = Work::default();
            let s = s_polynomial(&st.ring, f, g, &mut w);
            let nf = normal_form(&st.ring, &s, &basis, &mut w);
            (nf, w)
        };
        ctx.compute(work_cost(&w));
        let st = ctx.user_mut::<GrobNode>();
        st.reductions += 1;
        if nf.is_zero() {
            st.zero_reductions += 1;
            st.consumed += 1;
        } else {
            st.pending_inserts.push_back(nf.monic());
            if !st.lock_requested {
                st.lock_requested = true;
                let mut a = ArgsWriter::new();
                a.u16(ctx.node().0);
                ctx.invoke(NodeId(0), FuncId(fns.lock_req), a.finish());
            }
        }
    }

    /// We hold the lock and our cache is complete. The paper's early-
    /// release optimization: under the lock we only *check* whether the
    /// candidate's leading term became reducible by concurrently added
    /// polynomials (a handful of monomial divisions); if it did, we give
    /// the lock back immediately and redo the full reduction without it.
    fn complete_insert(&mut self, ctx: &mut Ctx<'_>, fns: ProtoFns) {
        enum Action {
            Insert(Poly),
            RereduceOutsideLock(Poly),
            NothingLeft,
        }
        let action = {
            let st = ctx.user_mut::<GrobNode>();
            let _nbasis = st.lock_granted.take().expect("lock granted");
            match st.pending_inserts.pop_front() {
                None => Action::NothingLeft,
                Some(poly) => {
                    let basis = st.known_basis();
                    let mut w = Work::default();
                    if earth_algebra::spoly::head_reducible(&poly, &basis, &mut w) {
                        Action::RereduceOutsideLock(poly)
                    } else {
                        Action::Insert(poly)
                    }
                }
            }
        };
        // The head check is a few monomial divisions.
        ctx.compute(VirtualDuration::from_us(20));
        match action {
            Action::NothingLeft => {
                // Every speculative result collapsed while we waited.
                let st = ctx.user_mut::<GrobNode>();
                st.lock_requested = false;
                let mut a = ArgsWriter::new();
                a.u16(ctx.node().0);
                ctx.invoke(NodeId(0), FuncId(fns.unlock), a.finish());
            }
            Action::Insert(poly) => {
                // Ship it to the manager for id assignment + broadcast;
                // the manager releases the lock. Our own AddPoly receipt
                // finishes the bookkeeping.
                let st = ctx.user_mut::<GrobNode>();
                st.lock_requested = false;
                st.awaiting_own_insert = true;
                let bytes = wire::to_bytes(&poly.monic(), st.ring.nvars);
                let mut a = ArgsWriter::new();
                a.u16(ctx.node().0).bytes(&bytes);
                ctx.invoke(NodeId(0), FuncId(fns.add_poly_req), a.finish());
            }
            Action::RereduceOutsideLock(poly) => {
                // Release the lock first, then reduce at leisure.
                {
                    let mut a = ArgsWriter::new();
                    a.u16(ctx.node().0);
                    ctx.invoke(NodeId(0), FuncId(fns.unlock), a.finish());
                }
                let (nf, w) = {
                    let st: &GrobNode = ctx.user();
                    let basis = st.known_basis();
                    let mut w = Work::default();
                    let nf = normal_form(&st.ring, &poly, &basis, &mut w);
                    (nf, w)
                };
                ctx.compute(work_cost(&w));
                let st = ctx.user_mut::<GrobNode>();
                if nf.is_zero() {
                    // Someone else's insert made ours redundant.
                    st.consumed += 1;
                    st.lock_requested = !st.pending_inserts.is_empty();
                } else {
                    st.pending_inserts.push_front(nf.monic());
                    st.lock_requested = true;
                }
                if st.lock_requested {
                    let mut a = ArgsWriter::new();
                    a.u16(ctx.node().0);
                    ctx.invoke(NodeId(0), FuncId(fns.lock_req), a.finish());
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Protocol handler frames (transient)

/// AddPoly { id, inserter, bytes }: cache the new basis polynomial.
struct AddPoly {
    id: u32,
    inserter: u16,
    bytes: Box<[u8]>,
}

impl ThreadedFn for AddPoly {
    fn run(&mut self, ctx: &mut Ctx<'_>, _tid: ThreadId) {
        let fns = ctx.user::<GrobNode>().fns;
        let me = ctx.node().0;
        // Deserialization cost: proportional to the polynomial size.
        ctx.compute(VirtualDuration::from_ns(200 * self.bytes.len() as u64));
        let (grants, prune_work): (Vec<(u16, LocalPair)>, Work) = {
            let st = ctx.user_mut::<GrobNode>();
            let poly = wire::from_bytes(&st.ring, &self.bytes);
            st.cache_insert(self.id, poly);
            st.retry_deferred();
            // Opportunistically re-reduce pending inserts against the
            // newcomer, off the lock's critical path: most speculative
            // results collapse to zero here instead of cycling through
            // the lock.
            let mut prune_work = Work::default();
            let newcomer = st.cache[self.id as usize].clone().unwrap();
            let basis = st.known_basis();
            let mut still_pending = VecDeque::new();
            while let Some(pending) = st.pending_inserts.pop_front() {
                if earth_algebra::spoly::head_reducible(
                    &pending,
                    std::slice::from_ref(&newcomer),
                    &mut prune_work,
                ) {
                    let nf = normal_form(&st.ring, &pending, &basis, &mut prune_work);
                    if nf.is_zero() {
                        st.consumed += 1;
                    } else {
                        still_pending.push_back(nf.monic());
                    }
                } else {
                    still_pending.push_back(pending);
                }
            }
            st.pending_inserts = still_pending;
            let mut grants = Vec::new();
            if self.inserter == me && st.awaiting_own_insert {
                st.awaiting_own_insert = false;
                // The pair that produced this polynomial is now consumed.
                st.consumed += 1;
                // Generate this polynomial's critical pairs (locally, with
                // the same criteria as the sequential algorithm).
                let leads: Vec<Monomial> = st.cache[..st.contiguous as usize]
                    .iter()
                    .map(|p| p.as_ref().unwrap().lead().m)
                    .collect();
                let mut skip_p = 0usize;
                let mut skip_c = 0usize;
                let selected = select_new_pairs(&leads, self.id as usize, &mut skip_p, &mut skip_c);
                // Scatter the fresh pairs over the workers (the paper's
                // pairs "are created asynchronously and in varying
                // numbers per node, and are thus subject to dynamic load
                // balancing"): starving workers first, then round-robin,
                // keeping every workers-th pair local.
                let workers = st.workers;
                let mut rr = me;
                for (i, _) in selected {
                    st.created += 1;
                    let dst = if let Some(hungry) = st.starving.pop_front() {
                        hungry
                    } else {
                        rr = (rr + 1) % workers;
                        rr
                    };
                    if dst == me {
                        st.push_pair(i as u32, self.id);
                    } else {
                        // Key and seq are irrelevant here: the grant is a
                        // plain (i, j) carrier, re-keyed by the receiver.
                        grants.push((dst, LocalPair::new((0, 0), 0, (i as u32, self.id))));
                    }
                }
                // More pending inserts? Re-request the lock.
                if !st.pending_inserts.is_empty() && !st.lock_requested {
                    st.lock_requested = true;
                    grants.push((u16::MAX, LocalPair::new((0, 0), 0, (0, 0)))); // sentinel handled below
                }
            }
            (grants, prune_work)
        };
        ctx.compute(work_cost(&prune_work));
        let mut need_lock = false;
        for (dst, pair) in grants {
            if dst == u16::MAX {
                need_lock = true;
                continue;
            }
            ctx.compute(insert_cost(0));
            let (pi, pj) = pair.item;
            let mut a = ArgsWriter::new();
            a.u32(pi).u32(pj);
            ctx.invoke(NodeId(dst), FuncId(fns.pair_grant), a.finish());
        }
        if need_lock {
            let mut a = ArgsWriter::new();
            a.u16(ctx.node().0);
            ctx.invoke(NodeId(0), FuncId(fns.lock_req), a.finish());
        }
        wake_worker(ctx);
        ctx.end();
    }
}

/// LockGrant { nbasis }: the manager granted us the lock.
struct LockGrant {
    nbasis: u32,
}

impl ThreadedFn for LockGrant {
    fn run(&mut self, ctx: &mut Ctx<'_>, _tid: ThreadId) {
        ctx.user_mut::<GrobNode>().lock_granted = Some(self.nbasis);
        wake_worker(ctx);
        ctx.end();
    }
}

/// PairRequest { origin, hops }: receiver-initiated ring balancing.
struct PairRequest {
    origin: u16,
    hops: u16,
}

impl ThreadedFn for PairRequest {
    fn run(&mut self, ctx: &mut Ctx<'_>, _tid: ThreadId) {
        let fns = ctx.user::<GrobNode>().fns;
        let action = {
            let st = ctx.user_mut::<GrobNode>();
            if st.stop {
                None
            } else if st.queue.len() >= 2 {
                Some(st.queue.pop().unwrap())
            } else {
                st.starving.push_back(self.origin);
                None
            }
        };
        match action {
            Some(pair) => {
                let (pi, pj) = pair.item;
                let mut a = ArgsWriter::new();
                a.u32(pi).u32(pj);
                ctx.invoke(NodeId(self.origin), FuncId(fns.pair_grant), a.finish());
            }
            None => {
                let st: &GrobNode = ctx.user();
                let workers = st.workers;
                if !st.stop && self.hops + 1 < workers.saturating_sub(1) {
                    let next = NodeId((ctx.node().0 + 1) % workers);
                    if next.0 != self.origin {
                        let mut a = ArgsWriter::new();
                        a.u16(self.origin).u16(self.hops + 1);
                        ctx.invoke(next, FuncId(fns.pair_request), a.finish());
                    }
                }
            }
        }
        ctx.end();
    }
}

/// PairGrant { i, j }: a pair migrated to this node.
struct PairGrant {
    i: u32,
    j: u32,
}

impl ThreadedFn for PairGrant {
    fn run(&mut self, ctx: &mut Ctx<'_>, _tid: ThreadId) {
        {
            let st = ctx.user_mut::<GrobNode>();
            st.requested_work = false;
            st.push_pair(self.i, self.j);
        }
        wake_worker(ctx);
        ctx.end();
    }
}

/// Stop: global termination.
struct Stop;

impl ThreadedFn for Stop {
    fn run(&mut self, ctx: &mut Ctx<'_>, _tid: ThreadId) {
        ctx.user_mut::<GrobNode>().stop = true;
        wake_worker(ctx);
        ctx.end();
    }
}

// ---- manager handlers (node 0) --------------------------------------------

fn grant_lock(ctx: &mut Ctx<'_>, fns: ProtoFns, to: u16) {
    let nbasis = {
        let st: &GrobNode = ctx.user();
        st.mgr.as_ref().expect("manager").basis_count
    };
    let mut a = ArgsWriter::new();
    a.u32(nbasis);
    ctx.invoke(NodeId(to), FuncId(fns.lock_grant), a.finish());
}

/// LockReq { worker }.
struct LockReq {
    worker: u16,
}

impl ThreadedFn for LockReq {
    fn run(&mut self, ctx: &mut Ctx<'_>, _tid: ThreadId) {
        let fns = ctx.user::<GrobNode>().fns;
        let grant = {
            let st = ctx.user_mut::<GrobNode>();
            let mgr = st.mgr.as_mut().expect("manager");
            if mgr.lock_held_by.is_none() {
                mgr.lock_held_by = Some(self.worker);
                true
            } else {
                mgr.lock_queue.push_back(self.worker);
                false
            }
        };
        if grant {
            grant_lock(ctx, fns, self.worker);
        }
        ctx.end();
    }
}

fn release_and_grant_next(ctx: &mut Ctx<'_>, fns: ProtoFns) {
    let next = {
        let st = ctx.user_mut::<GrobNode>();
        let mgr = st.mgr.as_mut().expect("manager");
        mgr.lock_held_by = None;
        let next = mgr.lock_queue.pop_front();
        if let Some(w) = next {
            mgr.lock_held_by = Some(w);
        }
        next
    };
    if let Some(w) = next {
        grant_lock(ctx, fns, w);
    }
}

/// Unlock { worker }.
struct Unlock {
    worker: u16,
}

impl ThreadedFn for Unlock {
    fn run(&mut self, ctx: &mut Ctx<'_>, _tid: ThreadId) {
        let fns = ctx.user::<GrobNode>().fns;
        {
            let st: &GrobNode = ctx.user();
            let mgr = st.mgr.as_ref().expect("manager");
            assert_eq!(mgr.lock_held_by, Some(self.worker), "unlock by non-holder");
        }
        release_and_grant_next(ctx, fns);
        ctx.end();
    }
}

/// AddPolyReq { worker, bytes }: assign an id, broadcast, release lock.
struct AddPolyReq {
    worker: u16,
    bytes: Box<[u8]>,
}

impl ThreadedFn for AddPolyReq {
    fn run(&mut self, ctx: &mut Ctx<'_>, _tid: ThreadId) {
        let fns = ctx.user::<GrobNode>().fns;
        let (id, workers) = {
            let st = ctx.user_mut::<GrobNode>();
            let mgr = st.mgr.as_mut().expect("manager");
            assert_eq!(
                mgr.lock_held_by,
                Some(self.worker),
                "insert without the lock"
            );
            let id = mgr.basis_count;
            mgr.basis_count += 1;
            (id, st.workers)
        };
        {
            let addr = ctx.user::<GrobNode>().status_addr;
            ctx.write_local(addr.offset, &(id + 1).to_le_bytes());
        }
        ctx.compute(insert_cost(0));
        // Broadcast to every worker (the paper sends broadcasts "in
        // sequence"; the polynomials themselves travel as block data).
        for w in 0..workers {
            let mut a = ArgsWriter::new();
            a.u32(id).u16(self.worker).bytes(&self.bytes);
            ctx.invoke(NodeId(w), FuncId(fns.add_poly), a.finish());
        }
        release_and_grant_next(ctx, fns);
        ctx.end();
    }
}

// ---- detector handlers (last node) -----------------------------------------

/// Status { worker, parked, created, consumed }.
struct Status {
    worker: u16,
    parked: bool,
    created: u64,
    consumed: u64,
}

impl ThreadedFn for Status {
    fn run(&mut self, ctx: &mut Ctx<'_>, _tid: ThreadId) {
        let fns = ctx.user::<GrobNode>().fns;
        let start_round = {
            let st = ctx.user_mut::<GrobNode>();
            let det = st.det.as_mut().expect("detector");
            if det.done {
                false
            } else {
                let w = self.worker as usize;
                det.parked[w] = self.parked;
                det.created[w] = self.created;
                det.consumed[w] = self.consumed;
                let balanced = det.created.iter().sum::<u64>() == det.consumed.iter().sum::<u64>();
                let all_parked = det.parked.iter().all(|&p| p);
                if balanced && all_parked && det.acks == 0 {
                    det.round += 1;
                    det.acks = st.workers as usize + 1; // workers + manager
                    det.round_ok = true;
                    det.lock_free = false;
                    true
                } else {
                    false
                }
            }
        };
        if start_round {
            probe_all(ctx, fns);
        }
        ctx.end();
    }
}

fn probe_all(ctx: &mut Ctx<'_>, fns: ProtoFns) {
    let (workers, round) = {
        let st: &GrobNode = ctx.user();
        (st.workers, st.det.as_ref().unwrap().round)
    };
    for w in 0..workers {
        let mut a = ArgsWriter::new();
        a.u32(round).u8(0);
        ctx.invoke(NodeId(w), FuncId(fns.probe), a.finish());
    }
    // The manager's lock state is probed too (mgr flag = 1).
    let mut a = ArgsWriter::new();
    a.u32(round).u8(1);
    ctx.invoke(NodeId(0), FuncId(fns.probe), a.finish());
}

/// Probe { round, mgr }: executed on a worker/manager node; replies with
/// its instantaneous state.
struct Probe {
    round: u32,
    mgr: bool,
}

impl ThreadedFn for Probe {
    fn run(&mut self, ctx: &mut Ctx<'_>, _tid: ThreadId) {
        let fns = ctx.user::<GrobNode>().fns;
        let det = ctx.user::<GrobNode>().detector.expect("detector exists");
        let mut a = ArgsWriter::new();
        let st: &GrobNode = ctx.user();
        if self.mgr {
            let mgr = st.mgr.as_ref().expect("manager");
            let free = mgr.lock_held_by.is_none() && mgr.lock_queue.is_empty();
            a.u32(self.round)
                .u8(1)
                .u16(ctx.node().0)
                .u8(free as u8)
                .u64(0)
                .u64(0);
        } else {
            let quiet = st.parked && st.pending_inserts.is_empty();
            a.u32(self.round)
                .u8(0)
                .u16(ctx.node().0)
                .u8(quiet as u8)
                .u64(st.created)
                .u64(st.consumed);
        }
        ctx.invoke(det, FuncId(fns.probe_ack), a.finish());
        ctx.end();
    }
}

/// ProbeAck: one probed node's reply.
struct ProbeAck {
    round: u32,
    mgr: bool,
    node: u16,
    quiet: bool,
    created: u64,
    consumed: u64,
}

impl ThreadedFn for ProbeAck {
    fn run(&mut self, ctx: &mut Ctx<'_>, _tid: ThreadId) {
        let fns = ctx.user::<GrobNode>().fns;
        enum Outcome {
            Nothing,
            NextRound,
            Terminate,
        }
        let outcome = {
            let st = ctx.user_mut::<GrobNode>();
            let workers = st.workers;
            let det = st.det.as_mut().expect("detector");
            if det.done || self.round != det.round || det.acks == 0 {
                Outcome::Nothing
            } else {
                det.acks -= 1;
                if self.mgr {
                    det.lock_free = self.quiet;
                    det.round_ok &= self.quiet;
                } else {
                    det.round_ok &= self.quiet;
                    det.created[self.node as usize] = self.created;
                    det.consumed[self.node as usize] = self.consumed;
                }
                if det.acks > 0 {
                    Outcome::Nothing
                } else {
                    let balanced =
                        det.created.iter().sum::<u64>() == det.consumed.iter().sum::<u64>();
                    if det.round_ok && balanced && det.lock_free {
                        let vector = (det.created.clone(), det.consumed.clone());
                        if det.last_vector.as_ref() == Some(&vector) {
                            det.confirmations += 1;
                        } else {
                            det.confirmations = 1;
                            det.last_vector = Some(vector);
                        }
                        if det.confirmations >= 2 {
                            det.done = true;
                            Outcome::Terminate
                        } else {
                            // Run the second confirmation round.
                            det.round += 1;
                            det.acks = workers as usize + 1;
                            det.round_ok = true;
                            Outcome::NextRound
                        }
                    } else {
                        // Aborted round: someone was transiently active.
                        // If the stored picture still looks terminated,
                        // immediately try again — no further Status may
                        // ever arrive to re-trigger us.
                        det.last_vector = None;
                        det.confirmations = 0;
                        let all_parked = det.parked.iter().all(|&p| p);
                        let balanced =
                            det.created.iter().sum::<u64>() == det.consumed.iter().sum::<u64>();
                        if all_parked && balanced {
                            det.round += 1;
                            det.acks = workers as usize + 1;
                            det.round_ok = true;
                            Outcome::NextRound
                        } else {
                            Outcome::Nothing
                        }
                    }
                }
            }
        };
        match outcome {
            Outcome::Nothing => {}
            Outcome::NextRound => probe_all(ctx, fns),
            Outcome::Terminate => {
                ctx.mark("groebner-done");
                let workers = ctx.user::<GrobNode>().workers;
                for w in 0..workers {
                    ctx.invoke(NodeId(w), FuncId(fns.stop), ArgsWriter::new().finish());
                }
            }
        }
        ctx.end();
    }
}

// ---------------------------------------------------------------------------
// Run driver

/// Result of a parallel Gröbner run.
pub struct GroebnerRun {
    /// The computed basis (from node 0's cache).
    pub basis: Vec<Poly>,
    /// Virtual time to the `groebner-done` mark.
    pub elapsed: VirtualDuration,
    /// Total pairs reduced across workers (the parallel "work").
    pub pairs_reduced: u64,
    /// Raw runtime report.
    pub report: earth_rt::RunReport,
    /// Optional diagnostics (filled by [`run_groebner_diag`]).
    pub diag: Option<String>,
    /// earth-profile data (filled by [`run_groebner_profiled`]).
    pub profile: Option<earth_rt::RunProfile>,
}

/// Like [`run_groebner`] but also returns a human-readable diagnostic
/// line (per-worker park time and reduction counts).
pub fn run_groebner_diag(
    ring: &Ring,
    input: &[Poly],
    nodes: u16,
    seed: u64,
    strategy: SelectionStrategy,
    comm_sync_us: Option<u64>,
) -> (GroebnerRun, String) {
    let run = run_groebner_inner(
        ring,
        input,
        nodes,
        seed,
        strategy,
        comm_sync_us,
        true,
        false,
        None,
        None,
        None,
    );
    let diag = run.diag.clone().unwrap_or_default();
    (run, diag)
}

/// Run parallel Buchberger completion over `nodes` simulated nodes (one
/// reserved for termination detection when `nodes >= 2`).
pub fn run_groebner(
    ring: &Ring,
    input: &[Poly],
    nodes: u16,
    seed: u64,
    strategy: SelectionStrategy,
    comm_sync_us: Option<u64>,
) -> GroebnerRun {
    run_groebner_inner(
        ring,
        input,
        nodes,
        seed,
        strategy,
        comm_sync_us,
        false,
        false,
        None,
        None,
        None,
    )
}

/// Like [`run_groebner`] with earth-profile collection on; timing is
/// identical to the unprofiled run.
pub fn run_groebner_profiled(
    ring: &Ring,
    input: &[Poly],
    nodes: u16,
    seed: u64,
    strategy: SelectionStrategy,
    comm_sync_us: Option<u64>,
) -> GroebnerRun {
    run_groebner_inner(
        ring,
        input,
        nodes,
        seed,
        strategy,
        comm_sync_us,
        false,
        true,
        None,
        None,
        None,
    )
}

/// Like [`run_groebner`] under a fault-injection plan: the reliability
/// layer makes every protocol message (locks, basis broadcasts, pair
/// traffic, termination tokens) exactly-once, so the computed basis is
/// identical to the fault-free run's — only virtual time degrades.
pub fn run_groebner_faulted(
    ring: &Ring,
    input: &[Poly],
    nodes: u16,
    seed: u64,
    strategy: SelectionStrategy,
    plan: &earth_machine::FaultPlan,
) -> GroebnerRun {
    run_groebner_inner(
        ring,
        input,
        nodes,
        seed,
        strategy,
        None,
        false,
        false,
        Some(plan),
        None,
        None,
    )
}

/// Like [`run_groebner`] with node `crash_node` crash-stopped at `down`
/// and — when `up` is given — restarted then; without `up` the failure
/// detector triggers a failover restart at the detection instant. The
/// checkpoint/recovery plane replays the lost work, so the computed
/// basis is identical to the fault-free run's; only virtual time
/// degrades.
#[allow(clippy::too_many_arguments)]
pub fn run_groebner_crashed(
    ring: &Ring,
    input: &[Poly],
    nodes: u16,
    seed: u64,
    strategy: SelectionStrategy,
    crash_node: u16,
    down: VirtualTime,
    up: Option<VirtualTime>,
) -> GroebnerRun {
    let plan = match up {
        Some(up) => earth_machine::FaultPlan::new().with_crash_restart(crash_node, down, up),
        None => earth_machine::FaultPlan::new().with_node_crash(crash_node, down),
    };
    run_groebner_faulted(ring, input, nodes, seed, strategy, &plan)
}

/// Like [`run_groebner_faulted`] (pass `plan: None` for a fault-free
/// run) but pinning the scheduler's event-queue implementation — the
/// queue-equivalence differential tests run the same workload under both
/// [`QueueKind`]s and require byte-identical reports.
pub fn run_groebner_queued(
    ring: &Ring,
    input: &[Poly],
    nodes: u16,
    seed: u64,
    strategy: SelectionStrategy,
    plan: Option<&earth_machine::FaultPlan>,
    queue: QueueKind,
) -> GroebnerRun {
    run_groebner_inner(
        ring,
        input,
        nodes,
        seed,
        strategy,
        None,
        false,
        false,
        plan,
        Some(queue),
        None,
    )
}

/// Like [`run_groebner`] but wiring the machine with the given
/// interconnect — the scaling sweeps run the same completion on every
/// topology. `TopologyKind::Crossbar` is byte-identical to
/// [`run_groebner`].
pub fn run_groebner_topo(
    ring: &Ring,
    input: &[Poly],
    nodes: u16,
    seed: u64,
    strategy: SelectionStrategy,
    topo: earth_machine::TopologyKind,
) -> GroebnerRun {
    run_groebner_inner(
        ring,
        input,
        nodes,
        seed,
        strategy,
        None,
        false,
        false,
        None,
        None,
        Some(topo),
    )
}

#[allow(clippy::too_many_arguments)]
fn run_groebner_inner(
    ring: &Ring,
    input: &[Poly],
    nodes: u16,
    seed: u64,
    strategy: SelectionStrategy,
    comm_sync_us: Option<u64>,
    want_diag: bool,
    profile: bool,
    faults: Option<&earth_machine::FaultPlan>,
    queue: Option<QueueKind>,
    topo: Option<earth_machine::TopologyKind>,
) -> GroebnerRun {
    assert!(nodes >= 1);
    let workers: u16 = if nodes == 1 { 1 } else { nodes - 1 };
    let detector: Option<NodeId> = (nodes >= 2).then(|| NodeId(nodes - 1));

    let mut cfg = MachineConfig::manna(nodes).with_jitter(0.03);
    if let Some(us) = comm_sync_us {
        cfg = cfg.with_message_passing(us);
    }
    if let Some(plan) = faults {
        cfg = cfg.with_faults(plan.clone());
    }
    if let Some(q) = queue {
        cfg = cfg.with_queue(q);
    }
    if let Some(t) = topo {
        cfg = cfg.with_topology(t);
    }
    let mut rt = Runtime::new(cfg, seed);
    if profile {
        rt.enable_profile();
    }

    // Register protocol functions.
    #[allow(clippy::field_reassign_with_default)]
    let fns = {
        let mut fns = ProtoFns::default();
        fns.add_poly = rt
            .register("gb-add-poly", |a| {
                let id = a.u32();
                let inserter = a.u16();
                let bytes = a.bytes().to_vec().into_boxed_slice();
                Box::new(AddPoly {
                    id,
                    inserter,
                    bytes,
                })
            })
            .0;
        fns.lock_grant = rt
            .register("gb-lock-grant", |a| Box::new(LockGrant { nbasis: a.u32() }))
            .0;
        fns.pair_request = rt
            .register("gb-pair-request", |a| {
                Box::new(PairRequest {
                    origin: a.u16(),
                    hops: a.u16(),
                })
            })
            .0;
        fns.pair_grant = rt
            .register("gb-pair-grant", |a| {
                Box::new(PairGrant {
                    i: a.u32(),
                    j: a.u32(),
                })
            })
            .0;
        fns.probe = rt
            .register("gb-probe", |a| {
                Box::new(Probe {
                    round: a.u32(),
                    mgr: a.u8() == 1,
                })
            })
            .0;
        fns.probe_ack = rt
            .register("gb-probe-ack", |a| {
                Box::new(ProbeAck {
                    round: a.u32(),
                    mgr: a.u8() == 1,
                    node: a.u16(),
                    quiet: a.u8() == 1,
                    created: a.u64(),
                    consumed: a.u64(),
                })
            })
            .0;
        fns.stop = rt.register("gb-stop", |_| Box::new(Stop)).0;
        fns.status = rt
            .register("gb-status", |a| {
                Box::new(Status {
                    worker: a.u16(),
                    parked: a.u8() == 1,
                    created: a.u64(),
                    consumed: a.u64(),
                })
            })
            .0;
        fns.lock_req = rt
            .register("gb-lock-req", |a| Box::new(LockReq { worker: a.u16() }))
            .0;
        fns.unlock = rt
            .register("gb-unlock", |a| Box::new(Unlock { worker: a.u16() }))
            .0;
        fns.add_poly_req = rt
            .register("gb-add-poly-req", |a| {
                let worker = a.u16();
                let bytes = a.bytes().to_vec().into_boxed_slice();
                Box::new(AddPolyReq { worker, bytes })
            })
            .0;
        fns
    };
    let worker_fn = rt.register("gb-worker", |_| Box::new(Worker));

    // Central solution-set status word on node 0.
    let status_addr = rt.alloc_on(NodeId(0), 8);
    // (initialized to the input count once states exist, below)

    // Host-side setup: replicate the inputs, seed the initial pairs.
    let inputs_monic: Vec<Poly> = input
        .iter()
        .filter(|p| !p.is_zero())
        .map(Poly::monic)
        .collect();
    let leads: Vec<Monomial> = inputs_monic.iter().map(|p| p.lead().m).collect();
    let mut initial_pairs: Vec<(u32, u32)> = Vec::new();
    let mut skip_p = 0usize;
    let mut skip_c = 0usize;
    for j in 1..leads.len() {
        for (i, _) in select_new_pairs(&leads[..=j], j, &mut skip_p, &mut skip_c) {
            initial_pairs.push((i as u32, j as u32));
        }
    }
    let mut shuffle_rng = Rng::new(seed ^ 0x6B);
    shuffle_rng.shuffle(&mut initial_pairs);

    for node in 0..nodes {
        let mut st = GrobNode {
            ring: ring.clone(),
            strategy,
            cache: Vec::new(),
            leads: Vec::new(),
            sugars: Vec::new(),
            contiguous: 0,
            queue: BinaryHeap::new(),
            deferred: Vec::new(),
            pending_inserts: VecDeque::new(),
            lock_requested: false,
            lock_granted: None,
            awaiting_own_insert: false,
            created: 0,
            consumed: 0,
            parked: false,
            worker_slot: None,
            stop: false,
            starving: VecDeque::new(),
            requested_work: false,
            pair_seq: node as u64 * 1_000_003,
            reductions: 0,
            zero_reductions: 0,
            parked_at: None,
            park_total: VirtualDuration::ZERO,
            parks: 0,
            mgr: (node == 0).then(|| ManagerState {
                lock_held_by: None,
                lock_queue: VecDeque::new(),
                basis_count: inputs_monic.len() as u32,
            }),
            det: (detector == Some(NodeId(node))).then(|| DetectorState {
                parked: vec![false; workers as usize],
                created: vec![0; workers as usize],
                consumed: vec![0; workers as usize],
                round: 0,
                acks: 0,
                round_ok: false,
                lock_free: false,
                last_vector: None,
                confirmations: 0,
                done: false,
            }),
            fns,
            workers,
            detector,
            status_addr,
            status_scratch: 0,
            current_pair: None,
        };
        for (id, p) in inputs_monic.iter().enumerate() {
            st.cache_insert(id as u32, p.clone());
        }
        rt.set_state(NodeId(node), st);
    }
    rt.write_mem(status_addr, &(inputs_monic.len() as u32).to_le_bytes());
    // Round-robin the shuffled initial pairs over the workers.
    for (k, &(i, j)) in initial_pairs.iter().enumerate() {
        let w = (k % workers as usize) as u16;
        let st = rt.state_mut::<GrobNode>(NodeId(w));
        st.push_pair(i, j);
        st.created += 1;
    }
    for w in 0..workers {
        rt.inject_invoke(NodeId(w), worker_fn, ArgsWriter::new().finish());
    }

    let report = rt.run();
    let done = report.mark("groebner-done").unwrap_or_else(|| {
        let mut dump = String::new();
        for w in 0..nodes {
            let st = rt.state::<GrobNode>(NodeId(w));
            dump.push_str(&format!(
                "\nn{w}: parked={} q={} defer={} pend={} lockreq={} granted={:?} await_own={} created={} consumed={} contig={} stop={}",
                st.parked, st.queue.len(), st.deferred.len(), st.pending_inserts.len(),
                st.lock_requested, st.lock_granted, st.awaiting_own_insert,
                st.created, st.consumed, st.contiguous, st.stop,
            ));
            if let Some(m) = &st.mgr {
                dump.push_str(&format!(" MGR held={:?} queue={:?} count={}", m.lock_held_by, m.lock_queue, m.basis_count));
            }
            if let Some(d) = &st.det {
                dump.push_str(&format!(" DET parked={:?} created={:?} consumed={:?} acks={} round={}", d.parked, d.created, d.consumed, d.acks, d.round));
            }
        }
        panic!("groebner run did not terminate:{dump}");
    });
    let pairs_reduced = (0..workers)
        .map(|w| rt.state::<GrobNode>(NodeId(w)).reductions)
        .sum();
    let basis = rt.state::<GrobNode>(NodeId(0)).known_basis();
    let diag = want_diag.then(|| {
        let mut parts = Vec::new();
        for w in 0..workers {
            let st = rt.state::<GrobNode>(NodeId(w));
            parts.push(format!(
                "w{w}: red={} zero={} parks={} park_total={}",
                st.reductions, st.zero_reductions, st.parks, st.park_total
            ));
        }
        parts.join(" | ")
    });
    let profile = profile.then(|| rt.take_profile());
    GroebnerRun {
        basis,
        elapsed: done.since(VirtualTime::ZERO),
        pairs_reduced,
        report,
        diag,
        profile,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use earth_algebra::buchberger::{buchberger, is_groebner, reduce_basis};
    use earth_algebra::cost::sequential_runtime;
    use earth_algebra::inputs::{katsura, lazard};

    fn check(ring: &Ring, input: &[Poly], nodes: u16, seed: u64) -> GroebnerRun {
        let run = run_groebner(ring, input, nodes, seed, SelectionStrategy::Sugar, None);
        assert!(
            is_groebner(ring, &run.basis),
            "parallel result is not a Groebner basis ({nodes} nodes)"
        );
        let (seq_basis, _) = buchberger(ring, input, SelectionStrategy::Sugar);
        assert_eq!(
            reduce_basis(ring, &run.basis),
            reduce_basis(ring, &seq_basis),
            "parallel and sequential bases generate different ideals"
        );
        run
    }

    #[test]
    fn single_node_completes_lazard() {
        let (ring, input) = lazard();
        let run = check(&ring, &input, 1, 1);
        assert!(run.pairs_reduced > 0);
    }

    #[test]
    fn two_nodes_one_worker_plus_detector() {
        let (ring, input) = lazard();
        check(&ring, &input, 2, 3);
    }

    #[test]
    fn five_nodes_complete_katsura3() {
        let (ring, input) = katsura(3);
        let run = check(&ring, &input, 5, 7);
        // several workers actually reduced something
        assert!(run.pairs_reduced >= 10);
    }

    #[test]
    fn eight_nodes_complete_katsura4() {
        let (ring, input) = katsura(4);
        let run = check(&ring, &input, 8, 11);
        assert!(run.report.net_messages > 100);
    }

    #[test]
    fn different_seeds_vary_the_work() {
        let (ring, input) = katsura(3);
        let runs: Vec<u64> = (0..4)
            .map(|s| {
                run_groebner(&ring, &input, 5, s, SelectionStrategy::Sugar, None).pairs_reduced
            })
            .collect();
        // The intrinsic indeterminism: not all runs do identical work.
        assert!(
            runs.iter().any(|&r| r != runs[0]) || runs.len() < 2,
            "expected work variation across seeds, got {runs:?}"
        );
    }

    #[test]
    fn message_passing_overhead_slows_completion() {
        let (ring, input) = katsura(3);
        let earth = run_groebner(&ring, &input, 5, 2, SelectionStrategy::Sugar, None);
        let mp = run_groebner(&ring, &input, 5, 2, SelectionStrategy::Sugar, Some(1000));
        assert!(
            mp.elapsed.as_us_f64() > 1.2 * earth.elapsed.as_us_f64(),
            "earth {} vs mp1000 {}",
            earth.elapsed,
            mp.elapsed
        );
    }

    #[test]
    fn parallel_speedup_exists() {
        let (ring, input) = katsura(4);
        let (_, stats) = buchberger(&ring, &input, SelectionStrategy::Sugar);
        let seq = sequential_runtime(&stats);
        let run = run_groebner(&ring, &input, 8, 5, SelectionStrategy::Sugar, None);
        let speedup = seq.as_us_f64() / run.elapsed.as_us_f64();
        assert!(speedup > 2.0, "7-worker speedup only {speedup}");
    }
}
