//! The neural-network application (§3.3): unit parallelism on EARTH.
//!
//! The 3-layer fully-connected net is *sliced*: each machine node owns a
//! contiguous range of hidden units and of output units (weights live in
//! node-local memory for the whole run — "long-term data ... maintained
//! per node"). Communication is centralized through node 0, which
//! collects each layer's activations and distributes the next layer's
//! input, organized as a binary tree ("in comparison to an earlier
//! version using sequential communications, speedups increased — for 80
//! units from a maximum of 8 to a maximum of 12"); the sequential shape
//! is kept as an ablation ([`CommsShape::Sequential`]).
//!
//! Per training sample (forward + backward):
//! 1. central broadcasts the input vector; every node computes its hidden
//!    slice and split-phase-stores it into central's buffer;
//! 2. central broadcasts the assembled hidden vector (plus the target for
//!    backprop); every node computes its output slice — and, for
//!    backprop, its output deltas, weight updates, and its *partial*
//!    hidden-error vector (different values for different units: the
//!    costlier backward communication the paper notes);
//! 3. (backward only) central sums the partials and broadcasts the hidden
//!    error; every node updates its hidden slice.
//!
//! The computation is the real `f32` arithmetic of `earth-nn`; forward
//! activations are validated bit-for-bit against the sequential network.

use earth_machine::{MachineConfig, NodeId};
use earth_nn::cost::{backward_slice_cost, error_calc_cost, forward_slice_cost};
use earth_nn::net::{sigmoid_prime, Mlp};
use earth_nn::slice::{partition, UnitRange};
use earth_rt::{
    ArgsReader, ArgsWriter, Ctx, FuncId, GlobalAddr, Runtime, SlotId, SlotRef, ThreadId, ThreadedFn,
};
use earth_sim::{Rng, VirtualDuration, VirtualTime};

/// Which passes each sample performs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PassMode {
    /// Forward only (Fig. 7).
    Forward,
    /// Forward + backpropagation + weight update (Fig. 8).
    ForwardBackward,
}

/// Shape of the central node's collect/distribute communication.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CommsShape {
    /// Central sends to every node in sequence (the paper's "earlier
    /// version").
    Sequential,
    /// Binary-tree forwarding (the published configuration).
    Tree,
}

const LEARNING_RATE: f32 = 0.5;

fn f32s_to_bytes(v: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(v.len() * 4);
    for x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

fn bytes_to_f32s(b: &[u8]) -> Vec<f32> {
    b.chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

/// Node-local state.
struct NeuralState {
    net: Mlp,
    hidden_range: UnitRange,
    output_range: UnitRange,
    /// Last input received (needed for the hidden weight update).
    last_input: Vec<f32>,
    /// Last full hidden vector received (needed for output-layer math and
    /// the hidden delta).
    last_hidden: Vec<f32>,
    /// Central only: per-sample log of full output vectors.
    outputs_log: Vec<Vec<f32>>,
}

/// Header every phase message carries besides its payload.
struct PhaseHeader {
    phase: u8,
    shape: CommsShape,
    reply_addr: GlobalAddr,
    reply_slot: SlotRef,
    partial_base: GlobalAddr,
}

fn write_header(w: &mut ArgsWriter, h: &PhaseHeader) {
    w.u8(h.phase)
        .u8(match h.shape {
            CommsShape::Sequential => 0,
            CommsShape::Tree => 1,
        })
        .addr(h.reply_addr)
        .slot(h.reply_slot)
        .addr(h.partial_base);
}

fn read_header(r: &mut ArgsReader<'_>) -> PhaseHeader {
    PhaseHeader {
        phase: r.u8(),
        shape: if r.u8() == 0 {
            CommsShape::Sequential
        } else {
            CommsShape::Tree
        },
        reply_addr: r.addr(),
        reply_slot: r.slot(),
        partial_base: r.addr(),
    }
}

/// Transient per-phase worker frame (one per node per phase message).
struct PhaseWork {
    header: PhaseHeader,
    payload: Box<[u8]>,
    me: FuncId,
}

impl PhaseWork {
    fn forward_to_children(&self, ctx: &mut Ctx<'_>) {
        if self.header.shape != CommsShape::Tree {
            return;
        }
        let n = ctx.num_nodes();
        let me = ctx.node();
        for child in earth_machine::topology::broadcast_children(NodeId(0), me, n) {
            let mut args = ArgsWriter::new();
            write_header(&mut args, &self.header);
            args.u32(self.me.0);
            args.raw(&self.payload);
            ctx.invoke(child, self.me, args.finish());
        }
    }
}

impl ThreadedFn for PhaseWork {
    fn run(&mut self, ctx: &mut Ctx<'_>, _tid: ThreadId) {
        // Forward down the tree before computing, so the broadcast
        // pipeline overlaps with local work.
        self.forward_to_children(ctx);
        let (hidden_range, output_range) = {
            let st: &NeuralState = ctx.user();
            (st.hidden_range, st.output_range)
        };
        match self.header.phase {
            1 => {
                // Hidden slice on the broadcast input.
                let input = bytes_to_f32s(&self.payload);
                let (slice, fanin) = {
                    let st = ctx.user_mut::<NeuralState>();
                    st.last_input = input.clone();
                    (
                        st.net
                            .hidden
                            .forward_slice(hidden_range.lo, hidden_range.hi, &input),
                        st.net.hidden.fanin,
                    )
                };
                ctx.compute(forward_slice_cost(hidden_range.len(), fanin));
                let dst = self.header.reply_addr.plus(4 * hidden_range.lo as u32);
                ctx.data_sync(&f32s_to_bytes(&slice), dst, Some(self.header.reply_slot));
            }
            2 | 3 => {
                // Phase 2: output slice forward; phase 3 adds the
                // backward math (deltas, updates, partial hidden error).
                let backward = self.header.phase == 3;
                let nhidden = {
                    let st: &NeuralState = ctx.user();
                    st.net.output.fanin
                };
                let payload = bytes_to_f32s(&self.payload);
                let (hidden, target) = if backward {
                    let (h, t) = payload.split_at(nhidden);
                    (h.to_vec(), t.to_vec())
                } else {
                    (payload, Vec::new())
                };
                let (slice, fanin) = {
                    let st = ctx.user_mut::<NeuralState>();
                    st.last_hidden = hidden.clone();
                    let s = st
                        .net
                        .output
                        .forward_slice(output_range.lo, output_range.hi, &hidden);
                    (s, st.net.output.fanin)
                };
                ctx.compute(forward_slice_cost(output_range.len(), fanin));
                let dst = self.header.reply_addr.plus(4 * output_range.lo as u32);
                ctx.data_sync(&f32s_to_bytes(&slice), dst, Some(self.header.reply_slot));
                if backward {
                    let partial = {
                        let st = ctx.user_mut::<NeuralState>();
                        let delta: Vec<f32> = slice
                            .iter()
                            .enumerate()
                            .map(|(k, &a)| (a - target[output_range.lo + k]) * sigmoid_prime(a))
                            .collect();
                        let partial = st.net.output.backward_partials(
                            output_range.lo,
                            output_range.hi,
                            &delta,
                        );
                        let h = st.last_hidden.clone();
                        st.net.output.update_slice(
                            output_range.lo,
                            output_range.hi,
                            &delta,
                            &h,
                            LEARNING_RATE,
                        );
                        partial
                    };
                    ctx.compute(backward_slice_cost(output_range.len(), fanin));
                    // Each node owns one region of the partial buffer.
                    let region = self
                        .header
                        .partial_base
                        .plus(4 * nhidden as u32 * ctx.node().0 as u32);
                    ctx.data_sync(
                        &f32s_to_bytes(&partial),
                        region,
                        Some(self.header.reply_slot),
                    );
                }
            }
            4 => {
                // Hidden-layer backward: receive summed hidden error,
                // compute deltas, update weights.
                let err = bytes_to_f32s(&self.payload);
                let fanin = {
                    let st = ctx.user_mut::<NeuralState>();
                    let delta: Vec<f32> = (hidden_range.lo..hidden_range.hi)
                        .map(|j| err[j] * sigmoid_prime(st.last_hidden[j]))
                        .collect();
                    let input = st.last_input.clone();
                    st.net.hidden.update_slice(
                        hidden_range.lo,
                        hidden_range.hi,
                        &delta,
                        &input,
                        LEARNING_RATE,
                    );
                    st.net.hidden.fanin
                };
                ctx.compute(backward_slice_cost(hidden_range.len(), fanin));
                ctx.sync(self.header.reply_slot);
            }
            other => unreachable!("no phase {other}"),
        }
        ctx.end();
    }
}

fn phase_ctor(args: &mut ArgsReader<'_>) -> Box<dyn ThreadedFn> {
    let header = read_header(args);
    let me = FuncId(args.u32());
    let n = args.remaining();
    let mut buf = vec![0u8; n];
    for b in buf.iter_mut() {
        *b = args.u8();
    }
    Box::new(PhaseWork {
        header,
        payload: buf.into_boxed_slice(),
        me,
    })
}

/// The driving frame on node 0.
struct Central {
    phase_fn: FuncId,
    mode: PassMode,
    shape: CommsShape,
    samples: Vec<(Vec<f32>, Vec<f32>)>,
    sample: usize,
    n_hidden: usize,
    n_out: usize,
    hidden_buf: GlobalAddr,
    out_buf: GlobalAddr,
    partial_buf: GlobalAddr,
}

const SLOT_HIDDEN: SlotId = SlotId(0);
const SLOT_OUTPUT: SlotId = SlotId(1);
const SLOT_BACK: SlotId = SlotId(2);
const T_HIDDEN_DONE: ThreadId = ThreadId(1);
const T_OUTPUT_DONE: ThreadId = ThreadId(2);
const T_BACK_DONE: ThreadId = ThreadId(3);

impl Central {
    fn broadcast(&self, ctx: &mut Ctx<'_>, header: PhaseHeader, payload_bytes: &[u8]) {
        let n = ctx.num_nodes();
        let targets: Vec<NodeId> = match self.shape {
            CommsShape::Sequential => (1..n).map(NodeId).collect(),
            CommsShape::Tree => {
                earth_machine::topology::broadcast_children(NodeId(0), NodeId(0), n)
            }
        };
        for node in targets {
            let mut args = ArgsWriter::new();
            write_header(&mut args, &header);
            args.u32(self.phase_fn.0);
            args.raw(payload_bytes);
            ctx.invoke(node, self.phase_fn, args.finish());
        }
    }

    fn finish_sample(&mut self, ctx: &mut Ctx<'_>) {
        self.sample += 1;
        if self.sample < self.samples.len() {
            ctx.spawn(ThreadId(0));
        } else {
            ctx.mark("neural-done");
            ctx.end();
        }
    }
}

impl ThreadedFn for Central {
    fn run(&mut self, ctx: &mut Ctx<'_>, tid: ThreadId) {
        let p = ctx.num_nodes() as usize;
        let remote = (p - 1) as i32;
        match tid {
            // Start one sample: broadcast input, compute own hidden slice.
            ThreadId(0) => {
                let (input, _) = self.samples[self.sample].clone();
                if remote > 0 {
                    ctx.init_sync(SLOT_HIDDEN, remote, remote, T_HIDDEN_DONE);
                    let header = PhaseHeader {
                        phase: 1,
                        shape: self.shape,
                        reply_addr: self.hidden_buf,
                        reply_slot: ctx.slot_ref(SLOT_HIDDEN),
                        partial_base: self.partial_buf,
                    };
                    self.broadcast(ctx, header, &f32s_to_bytes(&input));
                }
                let (slice, range, fanin) = {
                    let st = ctx.user_mut::<NeuralState>();
                    st.last_input = input.clone();
                    let r = st.hidden_range;
                    (
                        st.net.hidden.forward_slice(r.lo, r.hi, &input),
                        r,
                        st.net.hidden.fanin,
                    )
                };
                ctx.compute(forward_slice_cost(range.len(), fanin));
                ctx.write_local(
                    self.hidden_buf.offset + 4 * range.lo as u32,
                    &f32s_to_bytes(&slice),
                );
                if remote == 0 {
                    ctx.spawn(T_HIDDEN_DONE);
                }
            }
            // Hidden layer complete: broadcast it (with target for
            // backprop), compute own output slice (and backward math).
            T_HIDDEN_DONE => {
                let backward = self.mode == PassMode::ForwardBackward;
                let hidden = bytes_to_f32s(
                    &ctx.read_local(self.hidden_buf.offset, 4 * self.n_hidden as u32),
                );
                let target = self.samples[self.sample].1.clone();
                if remote > 0 {
                    let signals = if backward { 2 * remote } else { remote };
                    ctx.init_sync(SLOT_OUTPUT, signals, signals, T_OUTPUT_DONE);
                    let mut payload = hidden.clone();
                    let phase = if backward {
                        payload.extend_from_slice(&target);
                        3
                    } else {
                        2
                    };
                    let header = PhaseHeader {
                        phase,
                        shape: self.shape,
                        reply_addr: self.out_buf,
                        reply_slot: ctx.slot_ref(SLOT_OUTPUT),
                        partial_base: self.partial_buf,
                    };
                    self.broadcast(ctx, header, &f32s_to_bytes(&payload));
                }
                let (slice, range, fanin) = {
                    let st = ctx.user_mut::<NeuralState>();
                    st.last_hidden = hidden.clone();
                    let r = st.output_range;
                    (
                        st.net.output.forward_slice(r.lo, r.hi, &hidden),
                        r,
                        st.net.output.fanin,
                    )
                };
                ctx.compute(forward_slice_cost(range.len(), fanin));
                ctx.write_local(
                    self.out_buf.offset + 4 * range.lo as u32,
                    &f32s_to_bytes(&slice),
                );
                if backward {
                    let partial = {
                        let st = ctx.user_mut::<NeuralState>();
                        let r = st.output_range;
                        let delta: Vec<f32> = slice
                            .iter()
                            .enumerate()
                            .map(|(k, &a)| (a - target[r.lo + k]) * sigmoid_prime(a))
                            .collect();
                        let partial = st.net.output.backward_partials(r.lo, r.hi, &delta);
                        let h = st.last_hidden.clone();
                        st.net
                            .output
                            .update_slice(r.lo, r.hi, &delta, &h, LEARNING_RATE);
                        partial
                    };
                    ctx.compute(backward_slice_cost(range.len(), fanin));
                    ctx.write_local(self.partial_buf.offset, &f32s_to_bytes(&partial));
                }
                if remote == 0 {
                    ctx.spawn(T_OUTPUT_DONE);
                }
            }
            // Output complete: error calc; for backprop, reduce partials
            // and broadcast the hidden error.
            T_OUTPUT_DONE => {
                let output =
                    bytes_to_f32s(&ctx.read_local(self.out_buf.offset, 4 * self.n_out as u32));
                ctx.compute(error_calc_cost(self.n_out));
                ctx.user_mut::<NeuralState>().outputs_log.push(output);
                if self.mode == PassMode::Forward {
                    self.finish_sample(ctx);
                    return;
                }
                // Sum the partial hidden-error vectors (own + remote).
                let mut err = vec![0.0f32; self.n_hidden];
                for node in 0..p {
                    let region = bytes_to_f32s(&ctx.read_local(
                        self.partial_buf.offset + 4 * self.n_hidden as u32 * node as u32,
                        4 * self.n_hidden as u32,
                    ));
                    for (e, r) in err.iter_mut().zip(&region) {
                        *e += r;
                    }
                }
                ctx.compute(VirtualDuration::from_ns(50 * (p * self.n_hidden) as u64));
                if remote > 0 {
                    ctx.init_sync(SLOT_BACK, remote, remote, T_BACK_DONE);
                    let header = PhaseHeader {
                        phase: 4,
                        shape: self.shape,
                        reply_addr: self.out_buf,
                        reply_slot: ctx.slot_ref(SLOT_BACK),
                        partial_base: self.partial_buf,
                    };
                    self.broadcast(ctx, header, &f32s_to_bytes(&err));
                }
                // Own hidden slice backward.
                let fanin = {
                    let st = ctx.user_mut::<NeuralState>();
                    let r = st.hidden_range;
                    let delta: Vec<f32> = (r.lo..r.hi)
                        .map(|j| err[j] * sigmoid_prime(st.last_hidden[j]))
                        .collect();
                    let input = st.last_input.clone();
                    st.net
                        .hidden
                        .update_slice(r.lo, r.hi, &delta, &input, LEARNING_RATE);
                    st.net.hidden.fanin
                };
                let own_hidden = ctx.user::<NeuralState>().hidden_range.len();
                ctx.compute(backward_slice_cost(own_hidden, fanin));
                if remote == 0 {
                    ctx.spawn(T_BACK_DONE);
                }
            }
            T_BACK_DONE => {
                self.finish_sample(ctx);
            }
            other => unreachable!("central has no thread {other:?}"),
        }
    }
}

/// Result of a parallel neural-network run.
pub struct NeuralRun {
    /// Per-sample full output vectors (as observed at the central node).
    pub outputs: Vec<Vec<f32>>,
    /// Mean virtual time per sample.
    pub per_sample: VirtualDuration,
    /// Total elapsed virtual time.
    pub elapsed: VirtualDuration,
    /// Raw runtime report.
    pub report: earth_rt::RunReport,
    /// earth-profile data (filled by [`run_neural_profiled`]).
    pub profile: Option<earth_rt::RunProfile>,
}

/// Run `samples` training samples of a square `units`-wide network over
/// `nodes` simulated nodes (the paper's configuration).
pub fn run_neural(
    units: usize,
    nodes: u16,
    samples: usize,
    seed: u64,
    mode: PassMode,
    shape: CommsShape,
) -> NeuralRun {
    run_neural_shaped(units, units, units, nodes, samples, seed, mode, shape)
}

/// Run a network with per-layer widths (the paper's §3.3 closing remark:
/// "the number of units may differ per layer").
#[allow(clippy::too_many_arguments)]
pub fn run_neural_shaped(
    n_in: usize,
    n_hidden: usize,
    n_out: usize,
    nodes: u16,
    samples: usize,
    seed: u64,
    mode: PassMode,
    shape: CommsShape,
) -> NeuralRun {
    run_neural_on(
        MachineConfig::manna(nodes),
        n_in,
        n_hidden,
        n_out,
        samples,
        seed,
        mode,
        shape,
    )
}

/// Like [`run_neural`] under a fault-injection plan: the reliability
/// layer makes the collect/distribute traffic exactly-once, so the
/// trained weights and outputs are bit-identical to the fault-free
/// run's — only virtual time degrades.
pub fn run_neural_faulted(
    units: usize,
    nodes: u16,
    samples: usize,
    seed: u64,
    mode: PassMode,
    shape: CommsShape,
    plan: &earth_machine::FaultPlan,
) -> NeuralRun {
    run_neural_on(
        MachineConfig::manna(nodes).with_faults(plan.clone()),
        units,
        units,
        units,
        samples,
        seed,
        mode,
        shape,
    )
}

/// Like [`run_neural`] with node `crash_node` crash-stopped at `down`
/// and — when `up` is given — restarted then; without `up` the failure
/// detector triggers a failover restart at the detection instant. The
/// checkpoint/recovery plane replays the lost work, so the trained
/// weights and outputs are bit-identical to the fault-free run's; only
/// virtual time degrades.
#[allow(clippy::too_many_arguments)]
pub fn run_neural_crashed(
    units: usize,
    nodes: u16,
    samples: usize,
    seed: u64,
    mode: PassMode,
    shape: CommsShape,
    crash_node: u16,
    down: VirtualTime,
    up: Option<VirtualTime>,
) -> NeuralRun {
    let plan = match up {
        Some(up) => earth_machine::FaultPlan::new().with_crash_restart(crash_node, down, up),
        None => earth_machine::FaultPlan::new().with_node_crash(crash_node, down),
    };
    run_neural_faulted(units, nodes, samples, seed, mode, shape, &plan)
}

/// Like [`run_neural`] with earth-profile collection on; timing is
/// identical to the unprofiled run.
pub fn run_neural_profiled(
    units: usize,
    nodes: u16,
    samples: usize,
    seed: u64,
    mode: PassMode,
    shape: CommsShape,
) -> NeuralRun {
    run_neural_inner(
        MachineConfig::manna(nodes),
        units,
        units,
        units,
        samples,
        seed,
        mode,
        shape,
        true,
    )
}

/// Lowest-level entry: run on a caller-supplied machine configuration
/// (used by the dual-processor and cost-model ablations).
#[allow(clippy::too_many_arguments)]
pub fn run_neural_on(
    cfg: MachineConfig,
    n_in: usize,
    n_hidden: usize,
    n_out: usize,
    samples: usize,
    seed: u64,
    mode: PassMode,
    shape: CommsShape,
) -> NeuralRun {
    run_neural_inner(
        cfg, n_in, n_hidden, n_out, samples, seed, mode, shape, false,
    )
}

#[allow(clippy::too_many_arguments)]
fn run_neural_inner(
    cfg: MachineConfig,
    n_in: usize,
    n_hidden: usize,
    n_out: usize,
    samples: usize,
    seed: u64,
    mode: PassMode,
    shape: CommsShape,
    profile: bool,
) -> NeuralRun {
    assert!(samples >= 1);
    let nodes = cfg.nodes;
    let mut rt = Runtime::new(cfg, seed);
    if profile {
        rt.enable_profile();
    }
    let hidden_ranges = partition(n_hidden, nodes as usize);
    let out_ranges = partition(n_out, nodes as usize);
    let net = Mlp::new(n_in, n_hidden, n_out, seed ^ 0xD1);
    for node in 0..nodes {
        rt.set_state(
            NodeId(node),
            NeuralState {
                net: net.clone(),
                hidden_range: hidden_ranges[node as usize],
                output_range: out_ranges[node as usize],
                last_input: Vec::new(),
                last_hidden: Vec::new(),
                outputs_log: Vec::new(),
            },
        );
    }
    // Buffers on the central node.
    let hidden_buf = rt.alloc_on(NodeId(0), 4 * n_hidden as u32);
    let out_buf = rt.alloc_on(NodeId(0), 4 * n_out as u32);
    let partial_buf = rt.alloc_on(NodeId(0), 4 * n_hidden as u32 * nodes as u32);

    // Seeded sample stream.
    let mut rng = Rng::new(seed ^ 0x5A);
    let sample_set: Vec<(Vec<f32>, Vec<f32>)> = (0..samples)
        .map(|_| {
            let x = (0..n_in)
                .map(|_| rng.gen_f64_range(-1.0, 1.0) as f32)
                .collect();
            let t = (0..n_out)
                .map(|_| rng.gen_f64_range(0.1, 0.9) as f32)
                .collect();
            (x, t)
        })
        .collect();

    let phase_fn = rt.register("nn-phase", phase_ctor);
    let central_samples = sample_set;
    let central_fn = rt.register("nn-central", move |_| {
        Box::new(Central {
            phase_fn,
            mode,
            shape,
            samples: central_samples.clone(),
            sample: 0,
            n_hidden,
            n_out,
            hidden_buf,
            out_buf,
            partial_buf,
        })
    });
    rt.inject_invoke(NodeId(0), central_fn, ArgsWriter::new().finish());
    let report = rt.run();
    assert!(report.is_clean(), "neural run left debris: {report}");
    let done = report.mark("neural-done").expect("run incomplete");
    let elapsed = done.since(VirtualTime::ZERO);
    let outputs = std::mem::take(&mut rt.state_mut::<NeuralState>(NodeId(0)).outputs_log);
    let profile = profile.then(|| rt.take_profile());
    NeuralRun {
        outputs,
        per_sample: elapsed / samples as u64,
        elapsed,
        report,
        profile,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_matches_sequential_bit_for_bit() {
        let units = 24;
        let run = run_neural(units, 5, 3, 11, PassMode::Forward, CommsShape::Tree);
        // Recreate the reference: same net seed, same sample stream.
        let net = Mlp::square(units, 11 ^ 0xD1);
        let mut rng = Rng::new(11 ^ 0x5A);
        for sample_out in &run.outputs {
            let x: Vec<f32> = (0..units)
                .map(|_| rng.gen_f64_range(-1.0, 1.0) as f32)
                .collect();
            let _t: Vec<f32> = (0..units)
                .map(|_| rng.gen_f64_range(0.1, 0.9) as f32)
                .collect();
            let want = net.forward(&x);
            assert_eq!(sample_out, &want.output, "unit slicing must be exact");
        }
    }

    #[test]
    fn backward_tracks_sequential_training() {
        let units = 16;
        let samples = 4;
        let run = run_neural(
            units,
            4,
            samples,
            7,
            PassMode::ForwardBackward,
            CommsShape::Tree,
        );
        // Sequential reference with identical sample stream.
        let mut net = Mlp::square(units, 7 ^ 0xD1);
        let mut rng = Rng::new(7 ^ 0x5A);
        for sample_out in &run.outputs {
            let x: Vec<f32> = (0..units)
                .map(|_| rng.gen_f64_range(-1.0, 1.0) as f32)
                .collect();
            let t: Vec<f32> = (0..units)
                .map(|_| rng.gen_f64_range(0.1, 0.9) as f32)
                .collect();
            let acts = net.forward(&x);
            for (a, b) in sample_out.iter().zip(&acts.output) {
                assert!(
                    (a - b).abs() < 1e-4,
                    "parallel {a} vs sequential {b} (f32 reduction order)"
                );
            }
            net.train_sample(&x, &t, LEARNING_RATE);
        }
    }

    #[test]
    fn single_node_runs() {
        let run = run_neural(8, 1, 2, 3, PassMode::ForwardBackward, CommsShape::Tree);
        assert_eq!(run.outputs.len(), 2);
        assert_eq!(run.report.net_messages, 0);
    }

    #[test]
    fn tree_beats_sequential_comms_at_scale() {
        let units = 80;
        let seq = run_neural(units, 16, 3, 5, PassMode::Forward, CommsShape::Sequential);
        let tree = run_neural(units, 16, 3, 5, PassMode::Forward, CommsShape::Tree);
        assert!(
            tree.per_sample < seq.per_sample,
            "tree {} vs sequential {}",
            tree.per_sample,
            seq.per_sample
        );
    }

    #[test]
    fn parallel_is_faster_than_one_node() {
        let units = 80;
        let one = run_neural(units, 1, 2, 9, PassMode::Forward, CommsShape::Tree);
        let sixteen = run_neural(units, 16, 2, 9, PassMode::Forward, CommsShape::Tree);
        let speedup = one.per_sample.as_us_f64() / sixteen.per_sample.as_us_f64();
        assert!(speedup > 4.0, "speedup {speedup}");
    }
}

#[cfg(test)]
mod shaped_tests {
    use super::*;

    #[test]
    fn rectangular_forward_is_bit_exact() {
        // 12 inputs, 20 hidden, 6 outputs over 5 nodes.
        let (n_in, n_hidden, n_out) = (12, 20, 6);
        let run = run_neural_shaped(
            n_in,
            n_hidden,
            n_out,
            5,
            2,
            13,
            PassMode::Forward,
            CommsShape::Tree,
        );
        let net = Mlp::new(n_in, n_hidden, n_out, 13 ^ 0xD1);
        let mut rng = Rng::new(13 ^ 0x5A);
        for out in &run.outputs {
            let x: Vec<f32> = (0..n_in)
                .map(|_| rng.gen_f64_range(-1.0, 1.0) as f32)
                .collect();
            let _t: Vec<f32> = (0..n_out)
                .map(|_| rng.gen_f64_range(0.1, 0.9) as f32)
                .collect();
            assert_eq!(out, &net.forward(&x).output);
            assert_eq!(out.len(), n_out);
        }
    }

    #[test]
    fn rectangular_backward_tracks_sequential() {
        let (n_in, n_hidden, n_out) = (8, 14, 5);
        let run = run_neural_shaped(
            n_in,
            n_hidden,
            n_out,
            4,
            3,
            21,
            PassMode::ForwardBackward,
            CommsShape::Sequential,
        );
        let mut net = Mlp::new(n_in, n_hidden, n_out, 21 ^ 0xD1);
        let mut rng = Rng::new(21 ^ 0x5A);
        for out in &run.outputs {
            let x: Vec<f32> = (0..n_in)
                .map(|_| rng.gen_f64_range(-1.0, 1.0) as f32)
                .collect();
            let t: Vec<f32> = (0..n_out)
                .map(|_| rng.gen_f64_range(0.1, 0.9) as f32)
                .collect();
            let acts = net.forward(&x);
            for (a, b) in out.iter().zip(&acts.output) {
                assert!((a - b).abs() < 1e-4, "{a} vs {b}");
            }
            net.train_sample(&x, &t, LEARNING_RATE);
        }
    }
}
