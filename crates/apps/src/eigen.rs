//! The Eigenvalue application (§3.1): bisection search over EARTH TOKENs.
//!
//! The tridiagonal matrix is replicated on every node (host-side setup,
//! as on the real machine); "only interval boundaries need to be
//! communicated". Every search node of the bisection tree becomes one
//! EARTH `TOKEN` — no grouping, exactly as the paper states — whose
//! 28-byte argument record (3 integers + 2 doubles, Table 1) lives in the
//! parent's node memory and is fetched by the child either with five
//! individual split-phase `GET_SYNC`s or with one block move: the two
//! variants of Fig. 2.
//!
//! Tree join: each task signals its parent's sync slot when its subtree
//! completes; leaves additionally deliver their eigenvalues to a
//! collector on node 0. The run ends when node 0 has received all `n`
//! eigenvalues and the root task has joined.

use earth_linalg::bisect::{root_interval, step, Interval, Step};
use earth_linalg::cost::{emit_cost, sturm_cost};
use earth_linalg::SymTridiagonal;
use earth_machine::{MachineConfig, NodeId};
use earth_rt::{
    ArgsReader, ArgsWriter, Ctx, FuncId, GlobalAddr, Runtime, SlotId, SlotRef, ThreadId, ThreadedFn,
};
use earth_sim::{VirtualDuration, VirtualTime};

/// How a task fetches its argument record from the parent's node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FetchMode {
    /// Five individual `GET_SYNC`s (pointer-dereference style; the McCAT
    /// compiler path of the paper).
    Individual,
    /// One 28-byte block move.
    Block,
}

/// Node-local state: the replicated matrix plus (on node 0) the result
/// collector.
struct EigenState {
    matrix: SymTridiagonal,
    tol: f64,
    results: Vec<(f64, usize)>,
    /// The main frame's completion slot (set by `Main` at startup so the
    /// transient collector frames can signal it).
    main_slot: Option<SlotRef>,
}

/// Argument record layout in parent memory (Table 1's 28 bytes):
/// `lo: f64 | hi: f64 | count_lo: u32 | count_hi: u32 | depth: u32`.
/// Public because the traffic plane's eigen-class jobs reuse the same
/// record-passing idiom (child fetches its arguments from parent memory).
pub const REC_BYTES: u32 = 28;

/// Serialize an [`Interval`] into the 28-byte record at local `addr`.
pub fn write_record(ctx: &mut Ctx<'_>, addr: u32, iv: &Interval) {
    let mut bytes = Vec::with_capacity(REC_BYTES as usize);
    bytes.extend_from_slice(&iv.lo.to_le_bytes());
    bytes.extend_from_slice(&iv.hi.to_le_bytes());
    bytes.extend_from_slice(&(iv.count_lo as u32).to_le_bytes());
    bytes.extend_from_slice(&(iv.count_hi as u32).to_le_bytes());
    bytes.extend_from_slice(&iv.depth.to_le_bytes());
    ctx.write_local(addr, &bytes);
}

/// Deserialize the 28-byte record at local `addr` (inverse of
/// [`write_record`]).
pub fn read_record(ctx: &Ctx<'_>, addr: u32) -> Interval {
    let b = ctx.read_local(addr, REC_BYTES);
    Interval {
        lo: f64::from_le_bytes(b[0..8].try_into().unwrap()),
        hi: f64::from_le_bytes(b[8..16].try_into().unwrap()),
        count_lo: u32::from_le_bytes(b[16..20].try_into().unwrap()) as usize,
        count_hi: u32::from_le_bytes(b[20..24].try_into().unwrap()) as usize,
        depth: u32::from_le_bytes(b[24..28].try_into().unwrap()),
    }
}

/// One search task. Token args: parent record address, parent join slot,
/// own function id (for recursion), fetch mode.
struct Task {
    rec: GlobalAddr,
    parent: SlotRef,
    me: FuncId,
    record_fn: FuncId,
    mode: FetchMode,
    scratch: u32,
    children: u32,
}

const SLOT_FETCH: SlotId = SlotId(0);
const SLOT_JOIN: SlotId = SlotId(1);
const T_FETCHED: ThreadId = ThreadId(1);
const T_JOINED: ThreadId = ThreadId(2);

impl ThreadedFn for Task {
    fn run(&mut self, ctx: &mut Ctx<'_>, tid: ThreadId) {
        match tid {
            // THREAD_0: fetch the argument record split-phase.
            ThreadId(0) => {
                self.scratch = ctx.alloc(REC_BYTES).offset;
                match self.mode {
                    FetchMode::Individual => {
                        // 5 loads: 2 doubles + 3 ints, each with its own
                        // split-phase transaction.
                        ctx.init_sync(SLOT_FETCH, 5, 0, T_FETCHED);
                        ctx.get_sync(self.rec, self.scratch, 8, SLOT_FETCH);
                        ctx.get_sync(self.rec.plus(8), self.scratch + 8, 8, SLOT_FETCH);
                        ctx.get_sync(self.rec.plus(16), self.scratch + 16, 4, SLOT_FETCH);
                        ctx.get_sync(self.rec.plus(20), self.scratch + 20, 4, SLOT_FETCH);
                        ctx.get_sync(self.rec.plus(24), self.scratch + 24, 4, SLOT_FETCH);
                    }
                    FetchMode::Block => {
                        ctx.init_sync(SLOT_FETCH, 1, 0, T_FETCHED);
                        ctx.get_sync(self.rec, self.scratch, REC_BYTES, SLOT_FETCH);
                    }
                }
            }
            // THREAD_1: record arrived — do the Sturm step.
            T_FETCHED => {
                let iv = read_record(ctx, self.scratch);
                let (n, outcome) = {
                    let st: &EigenState = ctx.user();
                    (st.matrix.n(), step(&st.matrix, iv, st.tol))
                };
                match outcome {
                    Step::Converged {
                        value,
                        multiplicity,
                    } => {
                        ctx.compute(emit_cost());
                        let mut args = ArgsWriter::new();
                        args.f64(value).u32(multiplicity as u32);
                        ctx.invoke(NodeId(0), self.record_fn, args.finish());
                        ctx.sync(self.parent);
                        ctx.end();
                    }
                    Step::Split(children) => {
                        ctx.compute(sturm_cost(n));
                        self.children = children.len() as u32;
                        ctx.init_sync(SLOT_JOIN, children.len() as i32, 0, T_JOINED);
                        for child in children {
                            let rec = ctx.alloc(REC_BYTES);
                            write_record(ctx, rec.offset, &child);
                            let mut args = ArgsWriter::new();
                            args.addr(rec)
                                .slot(ctx.slot_ref(SLOT_JOIN))
                                .u32(self.me.0)
                                .u32(self.record_fn.0)
                                .u8(match self.mode {
                                    FetchMode::Individual => 0,
                                    FetchMode::Block => 1,
                                });
                            ctx.token(self.me, args.finish());
                        }
                    }
                }
            }
            // THREAD_2: both children joined — join our parent.
            T_JOINED => {
                ctx.sync(self.parent);
                ctx.end();
            }
            other => unreachable!("task has no thread {other:?}"),
        }
    }
}

fn task_ctor(args: &mut ArgsReader<'_>) -> Box<dyn ThreadedFn> {
    let rec = args.addr();
    let parent = args.slot();
    let me = FuncId(args.u32());
    let record_fn = FuncId(args.u32());
    let mode = if args.u8() == 0 {
        FetchMode::Individual
    } else {
        FetchMode::Block
    };
    Box::new(Task {
        rec,
        parent,
        me,
        record_fn,
        mode,
        scratch: 0,
        children: 0,
    })
}

/// Collector frame on node 0: appends one leaf's eigenvalues and signals
/// the main frame once per eigenvalue.
struct RecordLeaf {
    value: f64,
    multiplicity: u32,
}

impl ThreadedFn for RecordLeaf {
    fn run(&mut self, ctx: &mut Ctx<'_>, _tid: ThreadId) {
        ctx.compute(VirtualDuration::from_us(2));
        let (value, mult) = (self.value, self.multiplicity);
        let main_slot = {
            let st = ctx.user_mut::<EigenState>();
            st.results.push((value, mult as usize));
            st.main_slot.expect("main frame registered its slot")
        };
        for _ in 0..mult {
            ctx.sync(main_slot);
        }
        ctx.end();
    }
}

/// Main frame on node 0: computes the root interval, launches the root
/// task, and waits for all `n` eigenvalues plus the tree join.
struct Main {
    task_fn: FuncId,
    record_fn: FuncId,
    mode: FetchMode,
}

const SLOT_ALL: SlotId = SlotId(0);
const T_DONE: ThreadId = ThreadId(1);

impl ThreadedFn for Main {
    fn run(&mut self, ctx: &mut Ctx<'_>, tid: ThreadId) {
        match tid {
            ThreadId(0) => {
                let (n, root) = {
                    let st: &EigenState = ctx.user();
                    (st.matrix.n(), root_interval(&st.matrix))
                };
                // Gershgorin bounds: one pass over the matrix.
                ctx.compute(sturm_cost(n));
                // n eigenvalue signals + 1 root-join signal.
                ctx.init_sync(SLOT_ALL, n as i32 + 1, 0, T_DONE);
                let slot = ctx.slot_ref(SLOT_ALL);
                ctx.user_mut::<EigenState>().main_slot = Some(slot);
                let rec = ctx.alloc(REC_BYTES);
                write_record(ctx, rec.offset, &root);
                let mut args = ArgsWriter::new();
                args.addr(rec)
                    .slot(ctx.slot_ref(SLOT_ALL))
                    .u32(self.task_fn.0)
                    .u32(self.record_fn.0)
                    .u8(match self.mode {
                        FetchMode::Individual => 0,
                        FetchMode::Block => 1,
                    });
                ctx.token(self.task_fn, args.finish());
            }
            T_DONE => {
                ctx.mark("eigen-done");
                ctx.end();
            }
            other => unreachable!("main has no thread {other:?}"),
        }
    }
}

/// Everything a parallel eigenvalue run produces.
pub struct EigenRun {
    /// Eigenvalues found (sorted ascending, with multiplicity).
    pub eigenvalues: Vec<f64>,
    /// Virtual time from start to the `eigen-done` mark.
    pub elapsed: VirtualDuration,
    /// The raw runtime report.
    pub report: earth_rt::RunReport,
    /// earth-profile data (filled by [`run_eigen_profiled`]).
    pub profile: Option<earth_rt::RunProfile>,
}

/// Run the parallel bisection eigensolver on `nodes` simulated nodes.
pub fn run_eigen(
    matrix: &SymTridiagonal,
    tol: f64,
    nodes: u16,
    seed: u64,
    mode: FetchMode,
) -> EigenRun {
    run_eigen_inner(matrix, tol, MachineConfig::manna(nodes), seed, mode, false)
}

/// Like [`run_eigen`] with earth-profile collection on; timing is
/// identical to the unprofiled run.
pub fn run_eigen_profiled(
    matrix: &SymTridiagonal,
    tol: f64,
    nodes: u16,
    seed: u64,
    mode: FetchMode,
) -> EigenRun {
    run_eigen_inner(matrix, tol, MachineConfig::manna(nodes), seed, mode, true)
}

/// Like [`run_eigen`] under a fault-injection plan: the reliability layer
/// retransmits around drops and suppresses duplicates, so the computed
/// eigenvalues are bit-identical to the fault-free run's — only virtual
/// time (and the report's fault counters) degrade.
pub fn run_eigen_faulted(
    matrix: &SymTridiagonal,
    tol: f64,
    nodes: u16,
    seed: u64,
    mode: FetchMode,
    plan: &earth_machine::FaultPlan,
) -> EigenRun {
    let cfg = MachineConfig::manna(nodes).with_faults(plan.clone());
    run_eigen_inner(matrix, tol, cfg, seed, mode, false)
}

/// Like [`run_eigen`] with node `crash_node` crash-stopped at `down` and
/// — when `up` is given — restarted then; without `up` the failure
/// detector triggers a failover restart at the detection instant. The
/// checkpoint/recovery plane replays the lost work, so the computed
/// eigenvalues are bit-identical to the fault-free run's; only virtual
/// time (and the report's crash counters) degrade.
#[allow(clippy::too_many_arguments)]
pub fn run_eigen_crashed(
    matrix: &SymTridiagonal,
    tol: f64,
    nodes: u16,
    seed: u64,
    mode: FetchMode,
    crash_node: u16,
    down: VirtualTime,
    up: Option<VirtualTime>,
) -> EigenRun {
    let plan = match up {
        Some(up) => earth_machine::FaultPlan::new().with_crash_restart(crash_node, down, up),
        None => earth_machine::FaultPlan::new().with_node_crash(crash_node, down),
    };
    run_eigen_faulted(matrix, tol, nodes, seed, mode, &plan)
}

/// Lowest-level entry: run on a caller-supplied machine configuration
/// (used by the queue-equivalence differential tests and ablations).
pub fn run_eigen_on(
    matrix: &SymTridiagonal,
    tol: f64,
    cfg: MachineConfig,
    seed: u64,
    mode: FetchMode,
) -> EigenRun {
    run_eigen_inner(matrix, tol, cfg, seed, mode, false)
}

fn run_eigen_inner(
    matrix: &SymTridiagonal,
    tol: f64,
    cfg: MachineConfig,
    seed: u64,
    mode: FetchMode,
    profile: bool,
) -> EigenRun {
    let nodes = cfg.nodes;
    let mut rt = Runtime::new(cfg, seed);
    if profile {
        rt.enable_profile();
    }
    for node in 0..nodes {
        rt.set_state(
            NodeId(node),
            EigenState {
                matrix: matrix.clone(),
                tol,
                results: Vec::new(),
                main_slot: None,
            },
        );
    }
    let record_fn = rt.register("record-leaf", |args| {
        let value = args.f64();
        let multiplicity = args.u32();
        Box::new(RecordLeaf {
            value,
            multiplicity,
        })
    });
    let task_fn = rt.register("eigen-task", task_ctor);
    let main_fn = rt.register("eigen-main", move |_args| {
        Box::new(Main {
            task_fn,
            record_fn,
            mode,
        })
    });
    let _ = main_fn;
    rt.inject_invoke(NodeId(0), main_fn, ArgsWriter::new().finish());
    let report = rt.run();
    assert!(report.is_clean(), "eigen run left debris: {report}");
    let done = report
        .mark("eigen-done")
        .expect("eigen run did not complete");
    let mut eigenvalues: Vec<f64> = Vec::new();
    for &(v, m) in &rt.state::<EigenState>(NodeId(0)).results {
        for _ in 0..m {
            eigenvalues.push(v);
        }
    }
    eigenvalues.sort_by(|a, b| a.partial_cmp(b).unwrap());
    EigenRun {
        eigenvalues,
        elapsed: done.since(VirtualTime::ZERO),
        report,
        profile: profile.then(|| rt.take_profile()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use earth_linalg::bisect::bisect_all;
    use earth_linalg::cost::sequential_runtime;

    fn check_matches_sequential(matrix: &SymTridiagonal, tol: f64, nodes: u16, mode: FetchMode) {
        let run = run_eigen(matrix, tol, nodes, 42, mode);
        let (seq, _) = bisect_all(matrix, tol);
        assert_eq!(run.eigenvalues.len(), seq.len());
        for (p, s) in run.eigenvalues.iter().zip(&seq) {
            assert!((p - s).abs() <= 2.0 * tol, "parallel {p} vs sequential {s}");
        }
    }

    #[test]
    fn parallel_matches_sequential_individual_fetch() {
        let m = SymTridiagonal::toeplitz(40, -2.0, 1.0);
        check_matches_sequential(&m, 1e-6, 4, FetchMode::Individual);
    }

    #[test]
    fn parallel_matches_sequential_block_fetch() {
        let m = SymTridiagonal::random_clustered(50, 3, 7);
        check_matches_sequential(&m, 1e-6, 6, FetchMode::Block);
    }

    #[test]
    fn single_node_works() {
        let m = SymTridiagonal::toeplitz(20, 0.0, 1.0);
        check_matches_sequential(&m, 1e-8, 1, FetchMode::Block);
    }

    #[test]
    fn speedup_is_near_linear() {
        let m = SymTridiagonal::random_clustered(64, 4, 3);
        let tol = 1e-7;
        let (_, stats) = bisect_all(&m, tol);
        let seq = sequential_runtime(&stats, m.n());
        let r1 = run_eigen(&m, tol, 1, 1, FetchMode::Block);
        let r8 = run_eigen(&m, tol, 8, 1, FetchMode::Block);
        let s1 = seq.as_us_f64() / r1.elapsed.as_us_f64();
        let s8 = seq.as_us_f64() / r8.elapsed.as_us_f64();
        assert!(s1 > 0.85, "1-node efficiency too low: {s1}");
        assert!(s8 > 5.0, "8-node speedup too low: {s8}");
    }

    #[test]
    fn fetch_modes_cost_differently_but_agree() {
        let m = SymTridiagonal::random_clustered(48, 3, 9);
        let tol = 1e-6;
        let a = run_eigen(&m, tol, 4, 5, FetchMode::Individual);
        let b = run_eigen(&m, tol, 4, 5, FetchMode::Block);
        assert_eq!(a.eigenvalues.len(), b.eigenvalues.len());
        // Individual fetch sends 5x the messages for argument records.
        assert!(a.report.net_messages > b.report.net_messages);
        // But the runtime difference is small (the paper found it
        // insignificant): within 25%.
        let ratio = a.elapsed.as_us_f64() / b.elapsed.as_us_f64();
        assert!((0.75..1.25).contains(&ratio), "ratio {ratio}");
    }
}
