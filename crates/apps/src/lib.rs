//! The paper's applications, implemented on the EARTH runtime.
//!
//! Three applications from three classes of irregular, communication-
//! intensive programs (§1):
//!
//! * [`eigen`] — **Eigenvalue** (§3.1): a massive search problem. The
//!   ScaLAPACK bisection algorithm unfolds a dynamic, irregular search
//!   tree whose nodes are small (≈8 ms) tasks; tasks are `TOKEN`s under
//!   EARTH's dynamic load balancer, and each task's 28-byte argument
//!   record is fetched either by individual split-phase loads or by one
//!   block move (the two curves of Fig. 2).
//! * [`groebner`] — **Gröbner Basis** (§3.2): a completion procedure
//!   over shared data structures. Distributed per-node pair queues with
//!   local priorities, a replicated (read-cached) solution set with
//!   central maintenance and a lock, receiver-initiated pair balancing,
//!   and a dedicated termination-detection node. Intrinsically
//!   indeterministic: the processing order changes the work done.
//! * [`neural`] — **Neural networks** (§3.3): unit parallelism in a
//!   3-layer fully-connected feedforward net. Layers are sliced over
//!   nodes; a central node collects/distributes activations per phase
//!   through a tree-organized communication pattern (the sequential
//!   pattern is kept as an ablation).
//! * [`search`] — extension workloads from the search class the paper
//!   cites as already demonstrated on EARTH-MANNA (§3.1): Paraffins
//!   and a branch-and-bound TSP.
//!
//! Each module exposes a `run_*` entry point returning both the
//! *verified application result* (eigenvalues / Gröbner basis / network
//! outputs are checked against the sequential substrate) and the
//! simulated timing the benchmark harness turns into the paper's
//! figures.

pub mod eigen;
pub mod groebner;
pub mod neural;
pub mod search;
