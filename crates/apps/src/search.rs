//! Extension search workloads (§3.1 mentions them as prior EARTH-MANNA
//! successes: "Protein Folding ..., Paraffins ..., or TSP — computing the
//! optimal route for a traveling salesman").
//!
//! Two members of the class are implemented on the same TOKEN fork-join
//! skeleton as the Eigenvalue application:
//!
//! * [`tsp`] — branch-and-bound TSP with a centrally maintained incumbent
//!   bound. Because a better tour found early prunes everyone else's
//!   subtree, the parallel run can do *less* total work than the
//!   sequential one — the "indeterministic application behavior with
//!   respect to computation time ... may lead to superlinear speedups"
//!   class from the introduction.
//! * [`saw`] — exhaustive enumeration of self-avoiding walks on the
//!   square lattice, a faithful miniature of the Protein Folding
//!   workload (enumerating embeddings of a polymer). Deterministic
//!   total work, massive independent parallelism.

use earth_machine::{MachineConfig, NodeId};
use earth_rt::{
    ArgsReader, ArgsWriter, Ctx, FuncId, Runtime, SlotId, SlotRef, ThreadId, ThreadedFn,
};
use earth_sim::{Rng, VirtualDuration, VirtualTime};

// ===========================================================================
// TSP
// ===========================================================================

/// Branch-and-bound traveling salesman.
pub mod tsp {
    use super::*;

    /// A symmetric distance matrix.
    #[derive(Clone, Debug)]
    pub struct Distances {
        n: usize,
        d: Vec<u32>,
    }

    impl Distances {
        /// Seeded random symmetric instance with distances in [1, 100].
        pub fn random(n: usize, seed: u64) -> Distances {
            assert!(n >= 3);
            let mut rng = Rng::new(seed);
            let mut d = vec![0u32; n * n];
            for i in 0..n {
                for j in i + 1..n {
                    let v = 1 + rng.gen_range(100) as u32;
                    d[i * n + j] = v;
                    d[j * n + i] = v;
                }
            }
            Distances { n, d }
        }

        /// Number of cities.
        pub fn n(&self) -> usize {
            self.n
        }

        /// Distance between two cities.
        pub fn dist(&self, i: usize, j: usize) -> u32 {
            self.d[i * self.n + j]
        }

        /// A greedy nearest-neighbour tour cost (initial incumbent).
        pub fn nearest_neighbour(&self) -> u32 {
            let mut visited = vec![false; self.n];
            visited[0] = true;
            let mut at = 0;
            let mut cost = 0;
            for _ in 1..self.n {
                let next = (0..self.n)
                    .filter(|&j| !visited[j])
                    .min_by_key(|&j| self.dist(at, j))
                    .unwrap();
                cost += self.dist(at, next);
                visited[next] = true;
                at = next;
            }
            cost + self.dist(at, 0)
        }
    }

    /// Result of a (sequential or parallel) solve.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct Solution {
        /// Optimal tour cost.
        pub best: u32,
        /// Search-tree nodes expanded.
        pub expanded: u64,
    }

    fn expand(
        d: &Distances,
        path: &mut Vec<usize>,
        visited: &mut Vec<bool>,
        cost: u32,
        best: &mut u32,
        expanded: &mut u64,
    ) {
        *expanded += 1;
        let at = *path.last().unwrap();
        if path.len() == d.n() {
            let total = cost + d.dist(at, 0);
            if total < *best {
                *best = total;
            }
            return;
        }
        for next in 1..d.n() {
            if visited[next] {
                continue;
            }
            let c = cost + d.dist(at, next);
            if c >= *best {
                continue; // bound
            }
            visited[next] = true;
            path.push(next);
            expand(d, path, visited, c, best, expanded);
            path.pop();
            visited[next] = false;
        }
    }

    /// Sequential branch-and-bound from city 0.
    pub fn solve_sequential(d: &Distances) -> Solution {
        let mut best = d.nearest_neighbour();
        let mut expanded = 0;
        let mut path = vec![0];
        let mut visited = vec![false; d.n()];
        visited[0] = true;
        expand(d, &mut path, &mut visited, 0, &mut best, &mut expanded);
        Solution { best, expanded }
    }

    /// Virtual cost per expanded search node on the i860.
    pub fn node_cost() -> VirtualDuration {
        VirtualDuration::from_us(15)
    }

    struct TspState {
        d: Distances,
        /// Locally cached incumbent bound.
        best: u32,
        expanded: u64,
        /// Node 0 only: the authoritative incumbent.
        update_fn: u32,
        bound_fn: u32,
    }

    /// A task: expand the subtree under a fixed path prefix, entirely
    /// locally, pruning with the locally cached bound; report
    /// improvements to the central incumbent.
    struct SubTree {
        prefix: Vec<u8>,
        cost: u32,
        done: SlotRef,
    }

    impl ThreadedFn for SubTree {
        fn run(&mut self, ctx: &mut Ctx<'_>, _tid: ThreadId) {
            let (improved, expanded) = {
                let st = ctx.user_mut::<TspState>();
                let mut path: Vec<usize> = self.prefix.iter().map(|&c| c as usize).collect();
                let mut visited = vec![false; st.d.n()];
                for &c in &path {
                    visited[c] = true;
                }
                let before = st.best;
                let mut best = st.best;
                let mut expanded = 0;
                expand(
                    &st.d,
                    &mut path,
                    &mut visited,
                    self.cost,
                    &mut best,
                    &mut expanded,
                );
                st.expanded += expanded;
                let improved = (best < before).then_some(best);
                if let Some(b) = improved {
                    st.best = b;
                }
                (improved, expanded)
            };
            ctx.compute(node_cost().times(expanded));
            if let Some(best) = improved {
                let update = ctx.user::<TspState>().update_fn;
                let mut a = ArgsWriter::new();
                a.u32(best);
                ctx.invoke(NodeId(0), FuncId(update), a.finish());
            }
            ctx.sync(self.done);
            ctx.end();
        }
    }

    /// Central incumbent update: keep the min, broadcast improvements.
    struct UpdateBest {
        best: u32,
    }

    impl ThreadedFn for UpdateBest {
        fn run(&mut self, ctx: &mut Ctx<'_>, _tid: ThreadId) {
            let broadcast = {
                let st = ctx.user_mut::<TspState>();
                if self.best < st.best {
                    st.best = self.best;
                    true
                } else {
                    false
                }
            };
            if broadcast {
                let bound_fn = ctx.user::<TspState>().bound_fn;
                let n = ctx.num_nodes();
                for node in 1..n {
                    let mut a = ArgsWriter::new();
                    a.u32(self.best);
                    ctx.invoke(NodeId(node), FuncId(bound_fn), a.finish());
                }
            }
            ctx.end();
        }
    }

    /// A bound improvement arriving at a worker's cache.
    struct NewBound {
        best: u32,
    }

    impl ThreadedFn for NewBound {
        fn run(&mut self, ctx: &mut Ctx<'_>, _tid: ThreadId) {
            let st = ctx.user_mut::<TspState>();
            st.best = st.best.min(self.best);
            ctx.end();
        }
    }

    /// Root frame: seed one token per depth-2 prefix, join, report.
    struct Root {
        subtree_fn: FuncId,
    }

    impl ThreadedFn for Root {
        fn run(&mut self, ctx: &mut Ctx<'_>, tid: ThreadId) {
            match tid {
                ThreadId(0) => {
                    let (n, prefixes) = {
                        let st: &TspState = ctx.user();
                        let n = st.d.n();
                        let mut prefixes = Vec::new();
                        for a in 1..n {
                            for b in 1..n {
                                if b != a {
                                    prefixes.push((a, b));
                                }
                            }
                        }
                        (n, prefixes)
                    };
                    let _ = n;
                    ctx.init_sync(SlotId(0), prefixes.len() as i32, 0, ThreadId(1));
                    for (a, b) in prefixes {
                        let cost = {
                            let st: &TspState = ctx.user();
                            st.d.dist(0, a) + st.d.dist(a, b)
                        };
                        let mut args = ArgsWriter::new();
                        args.u32(cost)
                            .slot(ctx.slot_ref(SlotId(0)))
                            .u8(3)
                            .u8(0)
                            .u8(a as u8)
                            .u8(b as u8);
                        ctx.token(self.subtree_fn, args.finish());
                    }
                }
                ThreadId(1) => {
                    ctx.mark("tsp-done");
                    ctx.end();
                }
                other => unreachable!("root has no thread {other:?}"),
            }
        }
    }

    /// Result of a parallel TSP run.
    pub struct TspRun {
        /// Optimal tour cost found.
        pub best: u32,
        /// Total search nodes expanded (may beat sequential!).
        pub expanded: u64,
        /// Virtual elapsed time.
        pub elapsed: VirtualDuration,
    }

    /// Run parallel branch-and-bound over `nodes` simulated nodes.
    pub fn solve_parallel(d: &Distances, nodes: u16, seed: u64) -> TspRun {
        let mut rt = Runtime::new(MachineConfig::manna(nodes).with_jitter(0.02), seed);
        let subtree_fn = rt.register("tsp-subtree", |a: &mut ArgsReader<'_>| {
            let cost = a.u32();
            let done = a.slot();
            let len = a.u8() as usize;
            let prefix = (0..len).map(|_| a.u8()).collect();
            Box::new(SubTree { prefix, cost, done })
        });
        let update_fn = rt.register("tsp-update", |a: &mut ArgsReader<'_>| {
            Box::new(UpdateBest { best: a.u32() })
        });
        let bound_fn = rt.register("tsp-bound", |a: &mut ArgsReader<'_>| {
            Box::new(NewBound { best: a.u32() })
        });
        let root_fn = rt.register("tsp-root", move |_| Box::new(Root { subtree_fn }));
        let init_best = d.nearest_neighbour();
        for node in 0..nodes {
            rt.set_state(
                NodeId(node),
                TspState {
                    d: d.clone(),
                    best: init_best,
                    expanded: 0,
                    update_fn: update_fn.0,
                    bound_fn: bound_fn.0,
                },
            );
        }
        rt.inject_invoke(NodeId(0), root_fn, ArgsWriter::new().finish());
        let report = rt.run();
        assert!(report.is_clean(), "tsp run left debris: {report}");
        let done = report.mark("tsp-done").expect("tsp incomplete");
        let best = (0..nodes)
            .map(|n| rt.state::<TspState>(NodeId(n)).best)
            .min()
            .unwrap();
        let expanded = (0..nodes)
            .map(|n| rt.state::<TspState>(NodeId(n)).expanded)
            .sum();
        TspRun {
            best,
            expanded,
            elapsed: done.since(VirtualTime::ZERO),
        }
    }
}

// ===========================================================================
// Self-avoiding walks (the Protein Folding miniature)
// ===========================================================================

/// Exhaustive enumeration of self-avoiding walks on the square lattice.
pub mod saw {
    use super::*;

    /// Count self-avoiding walks of exactly `steps` steps starting at the
    /// origin (all directions counted; classic values 4, 12, 36, 100,
    /// 284, 780, 2172, ...).
    pub fn count_sequential(steps: u32) -> u64 {
        fn rec(steps: u32, x: i32, y: i32, occupied: &mut Vec<(i32, i32)>) -> u64 {
            if steps == 0 {
                return 1;
            }
            let mut total = 0;
            for (dx, dy) in [(1, 0), (-1, 0), (0, 1), (0, -1)] {
                let (nx, ny) = (x + dx, y + dy);
                if occupied.contains(&(nx, ny)) {
                    continue;
                }
                occupied.push((nx, ny));
                total += rec(steps - 1, nx, ny, occupied);
                occupied.pop();
            }
            total
        }
        rec(steps, 0, 0, &mut vec![(0, 0)])
    }

    /// Virtual cost of extending one walk by one site.
    pub fn site_cost() -> VirtualDuration {
        VirtualDuration::from_us(4)
    }

    struct SawState {
        /// Node 0: accumulated count.
        count: u64,
    }

    /// A task: enumerate all completions of a walk prefix. Prefixes below
    /// `split_depth` fork one token per extension; deeper ones run
    /// sequentially.
    struct Walk {
        /// Packed (x, y) path so far.
        path: Vec<(i8, i8)>,
        remaining: u32,
        split: u32,
        done: SlotRef,
        me: Option<FuncId>,
        add_fn: u32,
    }

    const T_JOINED: ThreadId = ThreadId(1);

    impl ThreadedFn for Walk {
        fn run(&mut self, ctx: &mut Ctx<'_>, tid: ThreadId) {
            match tid {
                ThreadId(0) => {
                    if self.remaining == 0 {
                        self.report(ctx, 1);
                        ctx.sync(self.done);
                        ctx.end();
                        return;
                    }
                    let (x, y) = *self.path.last().unwrap();
                    let extensions: Vec<(i8, i8)> = [(1, 0), (-1, 0), (0, 1), (0, -1)]
                        .iter()
                        .map(|&(dx, dy)| (x + dx, y + dy))
                        .filter(|p| !self.path.contains(p))
                        .collect();
                    ctx.compute(site_cost().times(4));
                    if extensions.is_empty() {
                        // Dead end: contributes no walks of full length.
                        ctx.sync(self.done);
                        ctx.end();
                        return;
                    }
                    if self.split == 0 {
                        // Sequential tail: enumerate locally.
                        let mut occupied: Vec<(i32, i32)> = self
                            .path
                            .iter()
                            .map(|&(a, b)| (a as i32, b as i32))
                            .collect();
                        let mut sites = 0u64;
                        let count = {
                            fn rec(
                                steps: u32,
                                x: i32,
                                y: i32,
                                occupied: &mut Vec<(i32, i32)>,
                                sites: &mut u64,
                            ) -> u64 {
                                if steps == 0 {
                                    return 1;
                                }
                                let mut total = 0;
                                for (dx, dy) in [(1, 0), (-1, 0), (0, 1), (0, -1)] {
                                    *sites += 1;
                                    let (nx, ny) = (x + dx, y + dy);
                                    if occupied.contains(&(nx, ny)) {
                                        continue;
                                    }
                                    occupied.push((nx, ny));
                                    total += rec(steps - 1, nx, ny, occupied, sites);
                                    occupied.pop();
                                }
                                total
                            }
                            let (lx, ly) = (x as i32, y as i32);
                            rec(self.remaining, lx, ly, &mut occupied, &mut sites)
                        };
                        ctx.compute(site_cost().times(sites));
                        self.report(ctx, count);
                        ctx.sync(self.done);
                        ctx.end();
                        return;
                    }
                    // Fork one token per extension.
                    ctx.init_sync(SlotId(0), extensions.len() as i32, 0, T_JOINED);
                    for ext in extensions {
                        let mut args = ArgsWriter::new();
                        args.u32(self.remaining - 1)
                            .u32(self.split - 1)
                            .slot(ctx.slot_ref(SlotId(0)))
                            .u32(self.me.unwrap().0)
                            .u32(self.add_fn)
                            .u8(self.path.len() as u8 + 1);
                        for &(px, py) in &self.path {
                            args.u8(px as u8).u8(py as u8);
                        }
                        args.u8(ext.0 as u8).u8(ext.1 as u8);
                        ctx.token(self.me.unwrap(), args.finish());
                    }
                }
                T_JOINED => {
                    ctx.sync(self.done);
                    ctx.end();
                }
                other => unreachable!("walk has no thread {other:?}"),
            }
        }
    }

    impl Walk {
        fn report(&self, ctx: &mut Ctx<'_>, count: u64) {
            if count == 0 {
                return;
            }
            let mut a = ArgsWriter::new();
            a.u64(count);
            ctx.invoke(NodeId(0), FuncId(self.add_fn), a.finish());
        }
    }

    /// Accumulate a partial count on node 0.
    struct AddCount {
        count: u64,
    }

    impl ThreadedFn for AddCount {
        fn run(&mut self, ctx: &mut Ctx<'_>, _tid: ThreadId) {
            ctx.user_mut::<SawState>().count += self.count;
            ctx.end();
        }
    }

    struct Root {
        walk_fn: FuncId,
        add_fn: FuncId,
        steps: u32,
        split: u32,
    }

    impl ThreadedFn for Root {
        fn run(&mut self, ctx: &mut Ctx<'_>, tid: ThreadId) {
            match tid {
                ThreadId(0) => {
                    ctx.init_sync(SlotId(0), 1, 0, ThreadId(1));
                    let mut args = ArgsWriter::new();
                    args.u32(self.steps)
                        .u32(self.split)
                        .slot(ctx.slot_ref(SlotId(0)))
                        .u32(self.walk_fn.0)
                        .u32(self.add_fn.0)
                        .u8(1)
                        .u8(0)
                        .u8(0);
                    ctx.token(self.walk_fn, args.finish());
                }
                ThreadId(1) => {
                    ctx.mark("saw-done");
                    ctx.end();
                }
                other => unreachable!("root has no thread {other:?}"),
            }
        }
    }

    /// Result of a parallel enumeration.
    pub struct SawRun {
        /// Number of self-avoiding walks of the requested length.
        pub count: u64,
        /// Virtual elapsed time.
        pub elapsed: VirtualDuration,
    }

    /// Enumerate walks of length `steps` in parallel, forking tokens for
    /// the first `split` levels.
    pub fn count_parallel(steps: u32, split: u32, nodes: u16, seed: u64) -> SawRun {
        let mut rt = Runtime::new(MachineConfig::manna(nodes), seed);
        let walk_fn = rt.register("saw-walk", |a: &mut ArgsReader<'_>| {
            let remaining = a.u32();
            let split = a.u32();
            let done = a.slot();
            let me = FuncId(a.u32());
            let add_fn = a.u32();
            let len = a.u8() as usize;
            let path = (0..len).map(|_| (a.u8() as i8, a.u8() as i8)).collect();
            Box::new(Walk {
                path,
                remaining,
                split,
                done,
                me: Some(me),
                add_fn,
            })
        });
        let add_fn = rt.register("saw-add", |a: &mut ArgsReader<'_>| {
            Box::new(AddCount { count: a.u64() })
        });
        let split_actual = split;
        let root_fn = rt.register("saw-root", move |a: &mut ArgsReader<'_>| {
            let steps = a.u32();
            Box::new(Root {
                walk_fn,
                add_fn,
                steps,
                split: split_actual,
            })
        });
        for node in 0..nodes {
            rt.set_state(NodeId(node), SawState { count: 0 });
        }
        let mut args = ArgsWriter::new();
        args.u32(steps);
        rt.inject_invoke(NodeId(0), root_fn, args.finish());
        let report = rt.run();
        assert!(report.is_clean(), "saw run left debris: {report}");
        let done = report.mark("saw-done").expect("saw incomplete");
        SawRun {
            count: rt.state::<SawState>(NodeId(0)).count,
            elapsed: done.since(VirtualTime::ZERO),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saw_counts_match_known_series() {
        // OEIS A001411: 4, 12, 36, 100, 284, 780, 2172
        let want = [4u64, 12, 36, 100, 284, 780, 2172];
        for (i, &w) in want.iter().enumerate() {
            assert_eq!(saw::count_sequential(i as u32 + 1), w, "length {}", i + 1);
        }
    }

    #[test]
    fn parallel_saw_matches_sequential() {
        for steps in [5u32, 8] {
            let run = saw::count_parallel(steps, 3, 6, 1);
            assert_eq!(run.count, saw::count_sequential(steps), "steps {steps}");
        }
    }

    #[test]
    fn parallel_saw_speeds_up() {
        let steps = 9;
        let one = saw::count_parallel(steps, 3, 1, 2);
        let eight = saw::count_parallel(steps, 3, 8, 2);
        let speedup = one.elapsed.as_us_f64() / eight.elapsed.as_us_f64();
        assert!(speedup > 4.0, "speedup {speedup}");
    }

    #[test]
    fn tsp_sequential_finds_optimum_on_small_instance() {
        // Brute-force cross-check on a 7-city instance.
        let d = tsp::Distances::random(7, 3);
        let seq = tsp::solve_sequential(&d);
        // brute force
        let mut perm: Vec<usize> = (1..7).collect();
        let mut best = u32::MAX;
        fn permute(d: &tsp::Distances, perm: &mut Vec<usize>, k: usize, best: &mut u32) {
            if k == perm.len() {
                let mut cost = d.dist(0, perm[0]);
                for w in perm.windows(2) {
                    cost += d.dist(w[0], w[1]);
                }
                cost += d.dist(*perm.last().unwrap(), 0);
                *best = (*best).min(cost);
                return;
            }
            for i in k..perm.len() {
                perm.swap(k, i);
                permute(d, perm, k + 1, best);
                perm.swap(k, i);
            }
        }
        permute(&d, &mut perm, 0, &mut best);
        assert_eq!(seq.best, best);
    }

    #[test]
    fn parallel_tsp_finds_the_same_optimum() {
        let d = tsp::Distances::random(9, 7);
        let seq = tsp::solve_sequential(&d);
        for nodes in [1u16, 4, 8] {
            let run = tsp::solve_parallel(&d, nodes, 5);
            assert_eq!(run.best, seq.best, "{nodes} nodes");
        }
    }

    #[test]
    fn parallel_tsp_speeds_up() {
        let d = tsp::Distances::random(10, 11);
        let one = tsp::solve_parallel(&d, 1, 1);
        let twelve = tsp::solve_parallel(&d, 12, 1);
        let speedup = one.elapsed.as_us_f64() / twelve.elapsed.as_us_f64();
        assert!(speedup > 4.0, "speedup {speedup}");
    }
}

// ===========================================================================
// Paraffins
// ===========================================================================

/// The Paraffins benchmark (§3.1 cites it among the search problems
/// already demonstrated on EARTH-MANNA): count the distinct isomers of
/// the alkanes C_n H_{2n+2} up to a given size, via radical (rooted
/// subtree) counting around the molecule's centroid — the classic
/// Sisal/Id kernel.
pub mod paraffins {
    use super::*;

    /// Multisets of `k` items drawn from `r` interchangeable types:
    /// `C(r + k - 1, k)`.
    fn multichoose(r: u64, k: u64) -> u64 {
        if k == 0 {
            return 1;
        }
        let mut num: u128 = 1;
        let mut den: u128 = 1;
        for i in 0..k {
            num *= (r + k - 1 - i) as u128;
            den *= (i + 1) as u128;
        }
        u64::try_from(num / den).expect("paraffin count fits u64")
    }

    /// Number of radicals (rooted trees, root degree ≤ 3) of each carbon
    /// count `0..=n` — OEIS A000598 (1, 1, 1, 2, 4, 8, 17, 39, ...).
    pub fn radicals(n: usize) -> Vec<u64> {
        let mut rad = vec![0u64; n + 1];
        rad[0] = 1; // the hydrogen "radical"
        for size in 1..=n {
            let target = size - 1;
            let mut total = 0u64;
            // multisets {a <= b <= c} of subtree sizes summing to size-1
            for a in 0..=target / 3 {
                for b in a..=(target - a) / 2 {
                    let c = target - a - b;
                    debug_assert!(c >= b);
                    total += if a == b && b == c {
                        multichoose(rad[a], 3)
                    } else if a == b {
                        multichoose(rad[a], 2) * rad[c]
                    } else if b == c {
                        rad[a] * multichoose(rad[b], 2)
                    } else {
                        rad[a] * rad[b] * rad[c]
                    };
                }
            }
            rad[size] = total;
        }
        rad
    }

    /// Count the ways to hang 4 radicals, sizes summing to `total`, each
    /// of size at most `cap`, on a central carbon.
    fn carbon_centered(rad: &[u64], total: usize, cap: usize) -> u64 {
        let mut count = 0u64;
        // multisets {a <= b <= c <= d}
        for a in 0..=total / 4 {
            for b in a..=(total - a) / 3 {
                for c in b..=(total - a - b) / 2 {
                    let d = total - a - b - c;
                    if d < c || d > cap {
                        continue;
                    }
                    // group equal sizes and multiply multiset choices
                    let sizes = [a, b, c, d];
                    let mut ways = 1u64;
                    let mut i = 0;
                    while i < 4 {
                        let mut j = i;
                        while j < 4 && sizes[j] == sizes[i] {
                            j += 1;
                        }
                        ways *= multichoose(rad[sizes[i]], (j - i) as u64);
                        i = j;
                    }
                    count += ways;
                }
            }
        }
        count
    }

    /// Number of paraffin isomers of exactly `size` carbons (centroid
    /// decomposition: bond-centered for even sizes + carbon-centered).
    pub fn isomers(rad: &[u64], size: usize) -> u64 {
        assert!(size >= 1);
        let mut total = 0u64;
        if size.is_multiple_of(2) {
            // central bond: an unordered pair of radicals of size/2
            total += multichoose(rad[size / 2], 2);
        }
        // central carbon: 4 radicals, each strictly smaller than half
        let cap = (size - 1) / 2;
        total += carbon_centered(rad, size - 1, cap);
        total
    }

    /// Sequential count of isomers for every size `1..=n`.
    pub fn count_sequential(n: usize) -> Vec<u64> {
        let rad = radicals(n / 2 + 1);
        (1..=n).map(|s| isomers(&rad, s)).collect()
    }

    /// Virtual cost of evaluating one size's partition enumeration.
    pub fn size_cost(size: usize) -> VirtualDuration {
        // partition count grows ~ cubically with size
        VirtualDuration::from_us(20 + (size as u64).pow(3) / 8)
    }

    struct ParState {
        rad: Vec<u64>,
        results: Vec<(u32, u64)>,
    }

    /// One token: count the isomers of one size.
    struct CountSize {
        size: u32,
        done: SlotRef,
        record_fn: u32,
    }

    impl ThreadedFn for CountSize {
        fn run(&mut self, ctx: &mut Ctx<'_>, _tid: ThreadId) {
            let count = {
                let st: &ParState = ctx.user();
                isomers(&st.rad, self.size as usize)
            };
            ctx.compute(size_cost(self.size as usize));
            let mut a = ArgsWriter::new();
            a.u32(self.size).u64(count);
            ctx.invoke(NodeId(0), FuncId(self.record_fn), a.finish());
            ctx.sync(self.done);
            ctx.end();
        }
    }

    struct Record {
        size: u32,
        count: u64,
    }

    impl ThreadedFn for Record {
        fn run(&mut self, ctx: &mut Ctx<'_>, _tid: ThreadId) {
            ctx.user_mut::<ParState>()
                .results
                .push((self.size, self.count));
            ctx.end();
        }
    }

    struct Root {
        n: u32,
        count_fn: FuncId,
        record_fn: FuncId,
    }

    impl ThreadedFn for Root {
        fn run(&mut self, ctx: &mut Ctx<'_>, tid: ThreadId) {
            match tid {
                ThreadId(0) => {
                    // The radical table is computed centrally (cheap DP),
                    // then one token per molecule size fans out.
                    ctx.compute(VirtualDuration::from_ms(2));
                    ctx.init_sync(SlotId(0), self.n as i32, 0, ThreadId(1));
                    for size in 1..=self.n {
                        let mut a = ArgsWriter::new();
                        a.u32(size)
                            .slot(ctx.slot_ref(SlotId(0)))
                            .u32(self.record_fn.0);
                        ctx.token(self.count_fn, a.finish());
                    }
                }
                ThreadId(1) => {
                    ctx.mark("paraffins-done");
                    ctx.end();
                }
                other => unreachable!("root has no thread {other:?}"),
            }
        }
    }

    /// Result of a parallel paraffins run.
    pub struct ParaffinsRun {
        /// `counts[k]` = isomers of size `k + 1`.
        pub counts: Vec<u64>,
        /// Virtual elapsed time.
        pub elapsed: VirtualDuration,
    }

    /// Count isomers of sizes `1..=n` in parallel: the radical table is
    /// replicated, one token per size under the load balancer.
    pub fn count_parallel(n: usize, nodes: u16, seed: u64) -> ParaffinsRun {
        let mut rt = Runtime::new(MachineConfig::manna(nodes), seed);
        let rad = radicals(n / 2 + 1);
        for node in 0..nodes {
            rt.set_state(
                NodeId(node),
                ParState {
                    rad: rad.clone(),
                    results: Vec::new(),
                },
            );
        }
        let record_fn = rt.register("paraffins-record", |a: &mut ArgsReader<'_>| {
            Box::new(Record {
                size: a.u32(),
                count: a.u64(),
            }) as Box<dyn ThreadedFn>
        });
        let count_fn = rt.register("paraffins-count", |a: &mut ArgsReader<'_>| {
            Box::new(CountSize {
                size: a.u32(),
                done: a.slot(),
                record_fn: a.u32(),
            }) as Box<dyn ThreadedFn>
        });
        let root_fn = rt.register("paraffins-root", move |a: &mut ArgsReader<'_>| {
            Box::new(Root {
                n: a.u32(),
                count_fn,
                record_fn,
            }) as Box<dyn ThreadedFn>
        });
        let mut args = ArgsWriter::new();
        args.u32(n as u32);
        rt.inject_invoke(NodeId(0), root_fn, args.finish());
        let report = rt.run();
        assert!(report.is_clean(), "paraffins run left debris");
        let done = report.mark("paraffins-done").expect("incomplete");
        let mut results = std::mem::take(&mut rt.state_mut::<ParState>(NodeId(0)).results);
        results.sort_unstable();
        ParaffinsRun {
            counts: results.into_iter().map(|(_, c)| c).collect(),
            elapsed: done.since(VirtualTime::ZERO),
        }
    }
}

#[cfg(test)]
mod paraffins_tests {
    use super::paraffins;

    #[test]
    fn radical_counts_match_oeis_a000598() {
        let rad = paraffins::radicals(10);
        assert_eq!(&rad[..11], &[1, 1, 1, 2, 4, 8, 17, 39, 89, 211, 507]);
    }

    #[test]
    fn isomer_counts_match_oeis_a000602() {
        // Alkane isomer counts: methane..tetradecane.
        let want = [1u64, 1, 1, 2, 3, 5, 9, 18, 35, 75, 159, 355, 802, 1858];
        let got = paraffins::count_sequential(14);
        assert_eq!(got, want);
    }

    #[test]
    fn parallel_matches_sequential() {
        let run = paraffins::count_parallel(14, 6, 3);
        assert_eq!(run.counts, paraffins::count_sequential(14));
    }

    #[test]
    fn parallel_speeds_up() {
        let one = paraffins::count_parallel(20, 1, 1);
        let eight = paraffins::count_parallel(20, 8, 1);
        let sp = one.elapsed.as_us_f64() / eight.elapsed.as_us_f64();
        // Amdahl-limited: the sequential radical DP plus the one biggest
        // size dominate, so modest machine counts see modest speedup.
        assert!(sp > 1.5, "speedup {sp}");
        // larger sizes dominate; check counts still exact at 20 carbons
        assert_eq!(one.counts.last(), Some(&366_319));
    }
}
