//! Property tests of the bisection substrate over generated symmetric
//! tridiagonal matrices.

use earth_linalg::{bisect_all, negcount, SymTridiagonal};
use earth_testkit::prelude::*;

fn arb_matrix() -> impl Strategy<Value = SymTridiagonal> {
    earth_testkit::domain::sym_tridiagonal(2..20, -10.0..10.0, -3.0..3.0)
}

props! {
    #![config(Config::with_cases(48))]

    #[test]
    fn negcount_is_monotone_in_the_shift(
        m in arb_matrix(),
        x in -60.0f64..60.0,
        dx in 0.0f64..30.0,
    ) {
        // negcount(x) counts eigenvalues below x: it can only grow as
        // the shift moves right, and it is bounded by the dimension.
        let lo = negcount(&m, x);
        let hi = negcount(&m, x + dx);
        prop_assert!(lo <= hi, "negcount decreased: {lo} > {hi}");
        prop_assert!(hi <= m.n());
    }

    #[test]
    fn gershgorin_interval_contains_the_whole_spectrum(m in arb_matrix()) {
        let (lo, hi) = m.gershgorin();
        prop_assert_eq!(negcount(&m, lo), 0, "eigenvalue below Gershgorin lo");
        prop_assert_eq!(negcount(&m, hi), m.n(), "eigenvalue above Gershgorin hi");
    }

    #[test]
    fn bisect_all_returns_the_sorted_full_spectrum(m in arb_matrix()) {
        let tol = 1e-7;
        let (ev, stats) = bisect_all(&m, tol);
        prop_assert_eq!(ev.len(), m.n());
        for w in ev.windows(2) {
            prop_assert!(w[0] <= w[1] + tol, "spectrum out of order");
        }
        let (lo, hi) = m.gershgorin();
        for &v in &ev {
            prop_assert!(v >= lo - tol && v <= hi + tol, "{v} outside [{lo},{hi}]");
        }
        prop_assert!(stats.tasks >= m.n());
    }
}
