//! Sequential bisection eigensolver with search-tree statistics.
//!
//! This is the reference implementation the parallel EARTH application is
//! validated against, and the source of the Table 1 characteristics
//! (number of search nodes, leaf depths, total sequential work). The
//! search proceeds exactly like the parallel version: each *task* takes an
//! interval known to contain `k > 0` eigenvalues, evaluates one Sturm
//! count at the midpoint, and either splits or emits eigenvalues once the
//! interval is narrower than the tolerance.

use crate::sturm::negcount;
use crate::tridiagonal::SymTridiagonal;

/// A search-tree node: an interval and the eigenvalue counts at its ends.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Interval {
    /// Lower endpoint.
    pub lo: f64,
    /// Upper endpoint.
    pub hi: f64,
    /// Eigenvalues strictly below `lo`.
    pub count_lo: usize,
    /// Eigenvalues strictly below `hi`.
    pub count_hi: usize,
    /// Depth in the search tree (root = 0).
    pub depth: u32,
}

impl Interval {
    /// Eigenvalues inside this interval.
    pub fn eigencount(&self) -> usize {
        self.count_hi - self.count_lo
    }
}

/// What a single bisection task does with its interval.
#[derive(Clone, Debug, PartialEq)]
pub enum Step {
    /// Interval narrower than the tolerance: emit its midpoint as an
    /// eigenvalue of the recorded multiplicity.
    Converged {
        /// The approximate eigenvalue.
        value: f64,
        /// Its multiplicity within the tolerance window.
        multiplicity: usize,
    },
    /// Interval split at its midpoint; children with zero eigenvalues are
    /// already pruned away.
    Split(Vec<Interval>),
}

/// Execute one search step: one Sturm count (the unit of work the cost
/// model charges 7.82 ms for at n = 1000) or a convergence emission.
pub fn step(m: &SymTridiagonal, iv: Interval, tol: f64) -> Step {
    debug_assert!(iv.eigencount() > 0, "task on an empty interval");
    if iv.hi - iv.lo < tol {
        return Step::Converged {
            value: 0.5 * (iv.lo + iv.hi),
            multiplicity: iv.eigencount(),
        };
    }
    let mid = 0.5 * (iv.lo + iv.hi);
    let count_mid = negcount(m, mid);
    let mut children = Vec::with_capacity(2);
    if count_mid > iv.count_lo {
        children.push(Interval {
            lo: iv.lo,
            hi: mid,
            count_lo: iv.count_lo,
            count_hi: count_mid,
            depth: iv.depth + 1,
        });
    }
    if iv.count_hi > count_mid {
        children.push(Interval {
            lo: mid,
            hi: iv.hi,
            count_lo: count_mid,
            count_hi: iv.count_hi,
            depth: iv.depth + 1,
        });
    }
    Step::Split(children)
}

/// The root interval: Gershgorin bounds with their (trivially known)
/// counts, after one confirming Sturm count at each end.
pub fn root_interval(m: &SymTridiagonal) -> Interval {
    let (lo, hi) = m.gershgorin();
    Interval {
        lo,
        hi,
        count_lo: 0,
        count_hi: m.n(),
        depth: 0,
    }
}

/// Tree statistics gathered by the sequential solver — the Table 1 row.
#[derive(Clone, Debug, Default)]
pub struct BisectStats {
    /// Search nodes that performed a Sturm count (the paper's "number of
    /// tasks created").
    pub tasks: usize,
    /// Leaves that emitted eigenvalues.
    pub leaves: usize,
    /// Shallowest leaf depth.
    pub min_leaf_depth: u32,
    /// Deepest leaf depth.
    pub max_leaf_depth: u32,
    /// Total Sturm-count work in matrix rows (tasks × n).
    pub sturm_rows: u64,
}

/// Find all eigenvalues of `m` to absolute tolerance `tol`.
/// Returns them sorted ascending (with multiplicity) plus tree statistics.
pub fn bisect_all(m: &SymTridiagonal, tol: f64) -> (Vec<f64>, BisectStats) {
    assert!(tol > 0.0, "tolerance must be positive");
    let mut stats = BisectStats {
        min_leaf_depth: u32::MAX,
        ..BisectStats::default()
    };
    let mut eigenvalues = Vec::with_capacity(m.n());
    let mut stack = vec![root_interval(m)];
    while let Some(iv) = stack.pop() {
        stats.tasks += 1;
        match step(m, iv, tol) {
            Step::Converged {
                value,
                multiplicity,
            } => {
                stats.leaves += 1;
                stats.min_leaf_depth = stats.min_leaf_depth.min(iv.depth);
                stats.max_leaf_depth = stats.max_leaf_depth.max(iv.depth);
                for _ in 0..multiplicity {
                    eigenvalues.push(value);
                }
            }
            Step::Split(children) => {
                stats.sturm_rows += m.n() as u64;
                stack.extend(children);
            }
        }
    }
    eigenvalues.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (eigenvalues, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toeplitz_eigenvalues_found_to_tolerance() {
        let n = 60;
        let m = SymTridiagonal::toeplitz(n, -2.0, 1.0);
        let tol = 1e-8;
        let (got, stats) = bisect_all(&m, tol);
        let want = SymTridiagonal::toeplitz_eigenvalues(n, -2.0, 1.0);
        assert_eq!(got.len(), n);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < tol, "got {g}, want {w}");
        }
        assert!(stats.tasks > n, "tree must be bigger than the leaf count");
        assert!(stats.max_leaf_depth >= stats.min_leaf_depth);
    }

    #[test]
    fn clustered_matrix_counts_all_eigenvalues() {
        let n = 150;
        let m = SymTridiagonal::random_clustered(n, 4, 5);
        let (ev, stats) = bisect_all(&m, 1e-6);
        assert_eq!(ev.len(), n, "every eigenvalue accounted for");
        assert!(ev.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(stats.leaves, stats.leaves);
        // Sturm counts confirm each found value is bracketed correctly.
        for (k, &v) in ev.iter().enumerate() {
            let below = crate::sturm::negcount(&m, v - 1e-5);
            assert!(below <= k, "value {k} mispositioned");
        }
    }

    #[test]
    fn step_prunes_empty_children() {
        let m = SymTridiagonal::toeplitz(4, 0.0, 0.1);
        let iv = root_interval(&m);
        if let Step::Split(children) = step(&m, iv, 1e-12) {
            for c in &children {
                assert!(c.eigencount() > 0, "no empty child tasks");
            }
        } else {
            panic!("root should split");
        }
    }

    #[test]
    fn multiplicity_from_tight_clusters() {
        // Identical diagonal, zero coupling: n-fold eigenvalue at 3.
        let m = SymTridiagonal::new(vec![3.0; 5], vec![0.0; 4]);
        let (ev, _) = bisect_all(&m, 1e-9);
        assert_eq!(ev.len(), 5);
        for v in ev {
            assert!((v - 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn deeper_tolerance_means_deeper_tree() {
        let m = SymTridiagonal::random_clustered(64, 3, 1);
        let (_, coarse) = bisect_all(&m, 1e-2);
        let (_, fine) = bisect_all(&m, 1e-10);
        assert!(fine.tasks > coarse.tasks);
        assert!(fine.max_leaf_depth > coarse.max_leaf_depth);
    }
}
