//! Sturm-sequence eigenvalue counting.
//!
//! For a symmetric tridiagonal matrix `T`, the number of negative values
//! in the sequence `q_1 = d_1 - x`, `q_i = d_i - x - e_{i-1}² / q_{i-1}`
//! equals the number of eigenvalues of `T` strictly less than `x` (the
//! LDLᵀ inertia argument ScaLAPACK's bisection kernel `dlaebz` relies
//! on). One count is `O(n)` — this is the unit of work of every search
//! node in the paper's Eigenvalue application.

use crate::tridiagonal::SymTridiagonal;

/// Number of eigenvalues of `m` strictly less than `x`.
///
/// Zero pivots are nudged by a tiny relative amount, the standard
/// safeguard against division blow-up (LAPACK uses the same trick).
pub fn negcount(m: &SymTridiagonal, x: f64) -> usize {
    let d = m.diag();
    let e = m.offdiag();
    let tiny = f64::MIN_POSITIVE;
    let mut count = 0;
    let mut q = d[0] - x;
    if q < 0.0 {
        count += 1;
    }
    for i in 1..d.len() {
        if q == 0.0 {
            q = tiny;
        }
        q = d[i] - x - e[i - 1] * e[i - 1] / q;
        if q < 0.0 {
            count += 1;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toeplitz_check(n: usize) {
        let m = SymTridiagonal::toeplitz(n, -2.0, 1.0);
        let ev = SymTridiagonal::toeplitz_eigenvalues(n, -2.0, 1.0);
        // Count below every midpoint between adjacent analytic eigenvalues.
        for k in 0..=n {
            let x = if k == 0 {
                ev[0] - 0.1
            } else if k == n {
                ev[n - 1] + 0.1
            } else {
                (ev[k - 1] + ev[k]) / 2.0
            };
            assert_eq!(negcount(&m, x), k, "n={n}, k={k}");
        }
    }

    #[test]
    fn counts_match_analytic_spectrum() {
        toeplitz_check(5);
        toeplitz_check(20);
        toeplitz_check(101);
    }

    #[test]
    fn count_is_monotone_in_x() {
        let m = SymTridiagonal::random_clustered(200, 5, 3);
        let (lo, hi) = m.gershgorin();
        let mut prev = 0;
        for i in 0..=100 {
            let x = lo + (hi - lo) * i as f64 / 100.0;
            let c = negcount(&m, x);
            assert!(c >= prev, "count must be non-decreasing");
            prev = c;
        }
        assert_eq!(prev, 200, "all eigenvalues below the upper bound");
    }

    #[test]
    fn bounds_bracket_everything() {
        let m = SymTridiagonal::random_clustered(64, 3, 11);
        let (lo, hi) = m.gershgorin();
        assert_eq!(negcount(&m, lo), 0);
        assert_eq!(negcount(&m, hi), 64);
    }

    #[test]
    fn exact_eigenvalue_at_pivot_handled() {
        // d = [0], eigenvalue exactly 0; counting below 0 gives 0.
        let m = SymTridiagonal::new(vec![0.0], vec![]);
        assert_eq!(negcount(&m, 0.0), 0);
        assert_eq!(negcount(&m, 1e-12), 1);
        // zero pivot mid-recurrence must not produce NaN
        let m2 = SymTridiagonal::new(vec![1.0, 1.0, 1.0], vec![1.0, 1.0]);
        let c = negcount(&m2, 1.0);
        assert!(c <= 3);
    }
}
