//! Symmetric tridiagonal matrices.

use earth_sim::Rng;

/// A symmetric tridiagonal matrix: diagonal `d[0..n]` and off-diagonal
/// `e[0..n-1]` (so `A[i][i] = d[i]`, `A[i][i+1] = A[i+1][i] = e[i]`).
#[derive(Clone, Debug, PartialEq)]
pub struct SymTridiagonal {
    d: Vec<f64>,
    e: Vec<f64>,
}

impl SymTridiagonal {
    /// Build from diagonals. `e.len()` must be `d.len() - 1` (or both
    /// empty).
    pub fn new(d: Vec<f64>, e: Vec<f64>) -> Self {
        assert!(!d.is_empty(), "matrix must be non-empty");
        assert_eq!(e.len(), d.len() - 1, "off-diagonal length mismatch");
        SymTridiagonal { d, e }
    }

    /// The classic Toeplitz test matrix with constant diagonal `a` and
    /// off-diagonal `b`, whose eigenvalues are known analytically:
    /// `a + 2 b cos(kπ/(n+1))` for `k = 1..n`.
    pub fn toeplitz(n: usize, a: f64, b: f64) -> Self {
        SymTridiagonal {
            d: vec![a; n],
            e: vec![b; n - 1],
        }
    }

    /// A seeded random matrix with a *clustered* spectrum, the shape the
    /// paper calls out ("eigenvalues are not equally spread but
    /// clustered, which means that the tree is irregular"). Construction:
    /// diagonal entries drawn from a handful of cluster centers with small
    /// spread, modest off-diagonal coupling.
    pub fn random_clustered(n: usize, clusters: usize, seed: u64) -> Self {
        assert!(n >= 2 && clusters >= 1);
        let mut rng = Rng::new(seed);
        let centers: Vec<f64> = (0..clusters)
            .map(|_| rng.gen_f64_range(-50.0, 50.0))
            .collect();
        let d = (0..n)
            .map(|_| {
                let c = *rng.choose(&centers).unwrap();
                c + rng.gen_f64_range(-0.5, 0.5)
            })
            .collect();
        let e = (0..n - 1).map(|_| rng.gen_f64_range(-1.0, 1.0)).collect();
        SymTridiagonal { d, e }
    }

    /// A seeded matrix whose spectrum consists of `clusters` *tight*
    /// clusters (width ≈ `within`, far below any practical bisection
    /// tolerance) — the regime of Table 1, where 1000 eigenvalues
    /// produce only ~935 search tasks because whole clusters converge
    /// as single multiplicity-carrying leaves.
    pub fn tight_clusters(n: usize, clusters: usize, within: f64, seed: u64) -> Self {
        assert!(n >= 2 && clusters >= 1 && within > 0.0);
        let mut rng = Rng::new(seed);
        let centers: Vec<f64> = (0..clusters)
            .map(|_| rng.gen_f64_range(-50.0, 50.0))
            .collect();
        let d = (0..n)
            .map(|_| {
                let c = *rng.choose(&centers).unwrap();
                c + rng.gen_f64_range(-within, within)
            })
            .collect();
        // Coupling of the same magnitude keeps eigenvalues within their
        // clusters while still exercising the full Sturm recurrence.
        let e = (0..n - 1)
            .map(|_| rng.gen_f64_range(-within, within))
            .collect();
        SymTridiagonal { d, e }
    }

    /// Dimension.
    pub fn n(&self) -> usize {
        self.d.len()
    }

    /// Diagonal entries.
    pub fn diag(&self) -> &[f64] {
        &self.d
    }

    /// Off-diagonal entries.
    pub fn offdiag(&self) -> &[f64] {
        &self.e
    }

    /// Analytic eigenvalues of [`SymTridiagonal::toeplitz`], sorted
    /// ascending — the reference the test suite validates bisection
    /// against.
    pub fn toeplitz_eigenvalues(n: usize, a: f64, b: f64) -> Vec<f64> {
        let mut ev: Vec<f64> = (1..=n)
            .map(|k| a + 2.0 * b * (k as f64 * std::f64::consts::PI / (n as f64 + 1.0)).cos())
            .collect();
        ev.sort_by(|x, y| x.partial_cmp(y).unwrap());
        ev
    }

    /// A Gershgorin interval `[lo, hi]` guaranteed to contain every
    /// eigenvalue, slightly widened so the endpoints are strictly outside
    /// the spectrum.
    pub fn gershgorin(&self) -> (f64, f64) {
        let n = self.n();
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for i in 0..n {
            let left = if i > 0 { self.e[i - 1].abs() } else { 0.0 };
            let right = if i + 1 < n { self.e[i].abs() } else { 0.0 };
            let r = left + right;
            lo = lo.min(self.d[i] - r);
            hi = hi.max(self.d[i] + r);
        }
        let pad = (hi - lo).max(1.0) * 1e-6;
        (lo - pad, hi + pad)
    }

    /// Serialize to bytes (for replicating the matrix into node memories).
    pub fn to_bytes(&self) -> Vec<u8> {
        let n = self.n() as u32;
        let mut out = Vec::with_capacity(4 + 8 * (2 * self.n() - 1));
        out.extend_from_slice(&n.to_le_bytes());
        for &v in &self.d {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for &v in &self.e {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Deserialize from [`SymTridiagonal::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let n = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
        let mut read =
            |i: usize| f64::from_le_bytes(bytes[4 + 8 * i..12 + 8 * i].try_into().unwrap());
        let d = (0..n).map(&mut read).collect();
        let e = (n..2 * n - 1).map(&mut read).collect();
        SymTridiagonal::new(d, e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_checks() {
        let m = SymTridiagonal::new(vec![1.0, 2.0, 3.0], vec![0.5, 0.5]);
        assert_eq!(m.n(), 3);
        assert_eq!(m.diag(), &[1.0, 2.0, 3.0]);
        assert_eq!(m.offdiag(), &[0.5, 0.5]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn bad_offdiag_rejected() {
        SymTridiagonal::new(vec![1.0, 2.0], vec![]);
    }

    #[test]
    fn gershgorin_contains_toeplitz_spectrum() {
        let m = SymTridiagonal::toeplitz(50, -2.0, 1.0);
        let (lo, hi) = m.gershgorin();
        for ev in SymTridiagonal::toeplitz_eigenvalues(50, -2.0, 1.0) {
            assert!(lo < ev && ev < hi, "{ev} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn toeplitz_eigenvalues_sorted_and_bounded() {
        let ev = SymTridiagonal::toeplitz_eigenvalues(10, 0.0, 1.0);
        assert!(ev.windows(2).all(|w| w[0] <= w[1]));
        assert!(ev.iter().all(|v| v.abs() < 2.0));
    }

    #[test]
    fn bytes_roundtrip() {
        let m = SymTridiagonal::random_clustered(37, 4, 99);
        let back = SymTridiagonal::from_bytes(&m.to_bytes());
        assert_eq!(m, back);
    }

    #[test]
    fn tight_clusters_produce_multiplets() {
        let m = SymTridiagonal::tight_clusters(60, 6, 1e-6, 3);
        let (ev, stats) = crate::bisect::bisect_all(&m, 1e-3);
        assert_eq!(ev.len(), 60);
        // Whole clusters converge as single leaves: far fewer leaves
        // than eigenvalues.
        assert!(stats.leaves <= 12, "leaves {}", stats.leaves);
    }

    #[test]
    fn clustered_matrix_is_deterministic() {
        let a = SymTridiagonal::random_clustered(100, 5, 7);
        let b = SymTridiagonal::random_clustered(100, 5, 7);
        assert_eq!(a, b);
        let c = SymTridiagonal::random_clustered(100, 5, 8);
        assert_ne!(a, c);
    }
}
