//! Linear-algebra substrate for the Eigenvalue application (paper §3.1).
//!
//! The paper parallelizes the ScaLAPACK bisection eigensolver for
//! symmetric tridiagonal matrices: Gershgorin's theorem gives an interval
//! containing all eigenvalues, a Sturm-sequence count tells how many
//! eigenvalues lie below any point on the real line, and recursive
//! interval bisection isolates each eigenvalue to the desired accuracy —
//! creating a dynamic, irregular search tree (irregular because real
//! spectra are clustered).
//!
//! This crate provides the sequential pieces: the matrix type, the Sturm
//! count, the full bisection solver with tree statistics (reproducing
//! Table 1), and the per-task virtual cost model calibrated to the
//! paper's 7.82 ms per search step at n = 1000.

pub mod bisect;
pub mod cost;
pub mod sturm;
pub mod tridiagonal;

pub use bisect::{bisect_all, BisectStats, Interval};
pub use sturm::negcount;
pub use tridiagonal::SymTridiagonal;
