//! Virtual-time cost model for the Eigenvalue application.
//!
//! Calibration (DESIGN.md §4): Table 1 reports a mean computation time of
//! 7.82 ms per search step on a 1000×1000 matrix and a sequential runtime
//! of 7310 ms over 935 tasks (935 × 7.82 ms ≈ 7.31 s — the sequential
//! solver is exactly the sum of its steps). One step is one Sturm count,
//! which is linear in the matrix dimension, giving **7.82 µs of simulated
//! i860 time per matrix row**.

use earth_sim::VirtualDuration;

/// Simulated i860 time per matrix row of one Sturm count.
pub const NS_PER_STURM_ROW: u64 = 7_820;

/// Cost of one full search step (one Sturm count) on an `n × n` matrix.
pub fn sturm_cost(n: usize) -> VirtualDuration {
    VirtualDuration::from_ns(NS_PER_STURM_ROW * n as u64)
}

/// Cost of emitting a converged eigenvalue (bookkeeping only).
pub fn emit_cost() -> VirtualDuration {
    VirtualDuration::from_us(5)
}

/// Sequential virtual runtime implied by bisection statistics: the sum of
/// all Sturm counts plus leaf emissions. This is the "original sequential
/// version" denominator of the Figure 2 speedups.
pub fn sequential_runtime(stats: &crate::bisect::BisectStats, n: usize) -> VirtualDuration {
    let splits = stats.tasks - stats.leaves;
    sturm_cost(n).times(splits as u64) + emit_cost().times(stats.leaves as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bisect::bisect_all;
    use crate::tridiagonal::SymTridiagonal;

    #[test]
    fn calibration_matches_table1_scale() {
        // One step at n=1000 must be 7.82 ms.
        assert!((sturm_cost(1000).as_ms_f64() - 7.82).abs() < 1e-9);
    }

    #[test]
    fn sequential_runtime_sums_steps() {
        let m = SymTridiagonal::toeplitz(100, -2.0, 1.0);
        let (_, stats) = bisect_all(&m, 1e-6);
        let t = sequential_runtime(&stats, 100);
        let expect_ms = (stats.tasks - stats.leaves) as f64 * sturm_cost(100).as_ms_f64()
            + stats.leaves as f64 * emit_cost().as_ms_f64();
        assert!((t.as_ms_f64() - expect_ms).abs() < 1e-6);
    }
}
