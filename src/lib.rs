//! # earth-manna
//!
//! A full reproduction of *"Experiences with Non-numeric Applications on
//! Multithreaded Architectures"* (Sodan, Gao, Maquelin, Schultz, Tian —
//! PPoPP 1997): the EARTH fine-grained multithreaded runtime, a
//! deterministic model of the MANNA distributed-memory machine it ran
//! on, the paper's three applications (Eigenvalue bisection search,
//! Gröbner Basis completion, unit-parallel feedforward neural networks),
//! and the harness that regenerates every table and figure of its
//! evaluation.
//!
//! This crate is the umbrella: it re-exports the workspace members under
//! stable names and hosts the runnable examples and cross-crate
//! integration tests.
//!
//! ## Layout
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`sim`] | `earth-sim` | virtual time, deterministic event queue, PRNG, statistics |
//! | [`machine`] | `earth-machine` | MANNA topology, network timing, EARTH vs message-passing cost models |
//! | [`rt`] | `earth-rt` | the EARTH runtime: frames, threads, sync slots, split-phase ops, tokens |
//! | [`msgpass`] | `earth-msgpass` | the two-sided message-passing baseline library |
//! | [`algebra`] | `earth-algebra` | polynomials over GF(32003), Buchberger completion, benchmark inputs |
//! | [`linalg`] | `earth-linalg` | tridiagonal matrices, Sturm counts, bisection eigensolver |
//! | [`nn`] | `earth-nn` | feedforward networks, backprop, unit slicing, i860 cost model |
//! | [`apps`] | `earth-apps` | the parallel applications on EARTH |
//! | [`traffic`] | `earth-traffic` | open-loop workload generator + admission/queueing front-end |
//! | [`bench`](mod@bench) | `earth-bench` | the per-table / per-figure experiment harness |
//!
//! ## Quickstart
//!
//! ```
//! use earth_manna::apps::eigen::{run_eigen, FetchMode};
//! use earth_manna::linalg::SymTridiagonal;
//!
//! let m = SymTridiagonal::toeplitz(32, -2.0, 1.0);
//! let run = run_eigen(&m, 1e-7, 4, 42, FetchMode::Block);
//! assert_eq!(run.eigenvalues.len(), 32);
//! println!("found {} eigenvalues in {}", run.eigenvalues.len(), run.elapsed);
//! ```

pub use earth_algebra as algebra;
pub use earth_apps as apps;
pub use earth_linalg as linalg;
pub use earth_machine as machine;
pub use earth_msgpass as msgpass;
pub use earth_nn as nn;
pub use earth_rt as rt;
pub use earth_sim as sim;
pub use earth_traffic as traffic;

/// The experiment harness, re-exported.
pub mod bench {
    pub use earth_bench::*;
}
