#!/usr/bin/env bash
# Offline CI gate: everything here must pass with no network access and
# no crates beyond the workspace itself (std only).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release, offline, all targets) =="
cargo build --release --offline --workspace --all-targets

echo "== tests =="
cargo test -q --offline --workspace

echo "== clippy (deny warnings) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== example smoke (release) =="
for ex in examples/*.rs; do
    name="$(basename "$ex" .rs)"
    echo "-- example: $name"
    cargo run --release --offline --example "$name" >/dev/null
done

echo "== chaos smoke (mid-run node crash per app vs fault-free golden) =="
cargo run --release --offline --example chaos_smoke >/dev/null

echo "== format =="
cargo fmt --check

echo "== bench smoke (1 iteration per benchmark) =="
TESTKIT_BENCH_SMOKE=1 cargo bench --offline --workspace >/dev/null

echo "== perf-baseline smoke (schema check against the committed BENCH json) =="
cargo run --release --offline -p earth-bench --bin repro -- \
    bench --smoke --check-schema BENCH_2026-08-07.json >/dev/null

echo "== event-queue equivalence (ladder vs reference heap) =="
cargo test -q --offline -p earth-sim --test queue_diff
cargo test -q --offline --test ladder_apps

echo "== topology scale smoke (256 nodes, every app x interconnect, byte-identical reruns) =="
cargo run --release --offline -p earth-bench --bin repro -- scale --smoke --json > /tmp/scale_smoke_a.json
cargo run --release --offline -p earth-bench --bin repro -- scale --smoke --json > /tmp/scale_smoke_b.json
cmp /tmp/scale_smoke_a.json /tmp/scale_smoke_b.json
grep -q '"experiment":"scale"' /tmp/scale_smoke_a.json
grep -q '"topologies":\["crossbar","hypercube","torus3d","fattree"\]' /tmp/scale_smoke_a.json

echo "== traffic smoke (open-loop streams through admission, byte-identical reruns) =="
cargo run --release --offline -p earth-bench --bin repro -- traffic --smoke --json > /tmp/traffic_smoke_a.json
cargo run --release --offline -p earth-bench --bin repro -- traffic --smoke --json > /tmp/traffic_smoke_b.json
cmp /tmp/traffic_smoke_a.json /tmp/traffic_smoke_b.json
grep -q '"experiment":"traffic"' /tmp/traffic_smoke_a.json
grep -q '"variant":"crashed"' /tmp/traffic_smoke_a.json

echo "== overload smoke (goodput under saturation, defenses off vs on, byte-identical reruns) =="
cargo run --release --offline -p earth-bench --bin repro -- overload --smoke --json > /tmp/overload_smoke_a.json
cargo run --release --offline -p earth-bench --bin repro -- overload --smoke --json > /tmp/overload_smoke_b.json
cmp /tmp/overload_smoke_a.json /tmp/overload_smoke_b.json
grep -q '"experiment":"overload"' /tmp/overload_smoke_a.json
grep -q '"variant":"naive"' /tmp/overload_smoke_a.json
grep -q '"variant":"defended_crashed"' /tmp/overload_smoke_a.json

echo "== straggler smoke (gray failure, naive vs defended, byte-identical reruns) =="
cargo run --release --offline -p earth-bench --bin repro -- stragglers --smoke --json > /tmp/stragglers_smoke_a.json
cargo run --release --offline -p earth-bench --bin repro -- stragglers --smoke --json > /tmp/stragglers_smoke_b.json
cmp /tmp/stragglers_smoke_a.json /tmp/stragglers_smoke_b.json
grep -q '"experiment":"stragglers"' /tmp/stragglers_smoke_a.json
grep -q '"variant":"naive"' /tmp/stragglers_smoke_a.json
grep -q '"variant":"defended_lossy"' /tmp/stragglers_smoke_a.json
grep -q '"variant":"defended_crashed"' /tmp/stragglers_smoke_a.json

echo "== topology scale full (1024 nodes; terminates inside the smoke budget) =="
cargo run --release --offline -p earth-bench --bin repro -- scale --json > /tmp/scale_full.json
grep -q '"nodes":\[20,64,256,1024\]' /tmp/scale_full.json

echo "ci.sh: all green"
